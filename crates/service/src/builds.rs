//! The shared build-side registry: one immutable hash-join build per
//! (table, statistics epoch), reused by every co-admitted query that
//! probes the same table.
//!
//! A hash-join build over a base table is a **pure function of the
//! table's key sequence** ([`gcm_engine::ops::hash::build_layout`]), so
//! queries joining the same table at the same statistics epoch can probe
//! one immutable slot array instead of each building their own — and
//! still produce byte-identical join output (probing visits slots in the
//! same order either way). The registry hands all of them the same
//! [`SharedBuild`], whose **canonical [`Region`]** is the model-side
//! identity of the shared data: every sharer's pattern references the
//! *same* region id, which is what lets the admission controller's
//! ⊙-composition count the build's footprint once across the batch
//! (Eq 5.3 via [`gcm_core::CostModel::batch_cost_shared`]) instead of
//! once per member.
//!
//! Storage is a [`TrieMap`] keyed by (table, epoch): lookups on the
//! submit path are wait-free snapshot reads, concurrent registrations
//! collapse to one build per key, and a statistics-epoch bump retires
//! stale builds the same way the plan cache retires stale plans.

use gcm_core::{Pattern, Region, RegionId};
use gcm_engine::ops::hash::{self, ENTRY_BYTES};
use gcm_trie::TrieMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Rewrite a whole-plan pattern for a query reusing a shared build over
/// the base table whose stat region is named `table_region`: find the
/// hash-join **build phase** `s_trav(T) ⊙ r_trav(H)` (the one 2-child
/// shape the optimizer emits, [`gcm_core::library::build_hash`]), drop
/// it, and substitute `H` with the build's canonical region in every
/// remaining leaf (the probe's `r_acc`) — so the sharer's pattern prices
/// the probe against the *shared* region id and skips the build
/// entirely, exactly what its execution does. Returns `None` when no
/// such phase exists (the pattern then stays un-rewritten and the build
/// is not attached, keeping prediction and execution consistent).
pub fn strip_build_phase(
    pattern: &Pattern,
    table_region: &str,
    shared: &Region,
) -> Option<Pattern> {
    let Pattern::Seq(phases) = pattern else {
        return None;
    };
    let (idx, h_id) = phases.iter().enumerate().find_map(|(i, ph)| {
        let Pattern::Conc(cs) = ph else { return None };
        let [Pattern::STrav { r: rv, .. }, Pattern::RTrav { r: rh, .. }] = cs.as_slice() else {
            return None;
        };
        // The build phase over *this* table with a table sized like the
        // shared layout (same slot rule ⇒ same bytes).
        (rv.name() == table_region && rh.bytes() == shared.bytes()).then(|| (i, rh.id()))
    })?;
    let rewritten = phases
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, ph)| substitute_region(ph, h_id, shared))
        .collect();
    Some(Pattern::seq(rewritten))
}

/// Replace every leaf over region `from` with the same access over
/// `to` (same counts and widths, the shared region's identity).
fn substitute_region(p: &Pattern, from: RegionId, to: &Region) -> Pattern {
    match p {
        Pattern::Seq(ps) => {
            Pattern::Seq(ps.iter().map(|q| substitute_region(q, from, to)).collect())
        }
        Pattern::Conc(ps) => {
            Pattern::Conc(ps.iter().map(|q| substitute_region(q, from, to)).collect())
        }
        Pattern::Repeat { k, inner } => Pattern::Repeat {
            k: *k,
            inner: Box::new(substitute_region(inner, from, to)),
        },
        basic => {
            if basic.region().is_some_and(|r| r.id() == from) {
                let mut swapped = basic.clone();
                match &mut swapped {
                    Pattern::STrav { r, .. }
                    | Pattern::RsTrav { r, .. }
                    | Pattern::RTrav { r, .. }
                    | Pattern::RrTrav { r, .. }
                    | Pattern::RAcc { r, .. }
                    | Pattern::Nest { r, .. } => *r = to.clone(),
                    Pattern::Seq(_) | Pattern::Conc(_) | Pattern::Repeat { .. } => {
                        unreachable!("basic pattern")
                    }
                }
                swapped
            } else {
                basic.clone()
            }
        }
    }
}

/// One immutable, shareable hash-join build side.
#[derive(Debug)]
pub struct SharedBuild {
    /// Catalog index of the built table.
    pub table: usize,
    /// Statistics epoch the build belongs to.
    pub epoch: u64,
    /// The canonical model region for the slot array. Every query
    /// reusing this build substitutes this region (same id) into its
    /// probe pattern, so ⊙-pricing recognizes the data as shared.
    pub region: Region,
    /// The slot array ([`hash::build_layout`]): `[key, value]` pairs,
    /// EMPTY-keyed in vacant slots. Workers materialize it host-side
    /// ([`gcm_engine::plan::PrebuiltBuild`]) without charged accesses.
    pub layout: Arc<Vec<u64>>,
}

/// Registry of shared builds keyed by (table, epoch).
#[derive(Debug, Default)]
pub struct BuildRegistry {
    entries: TrieMap<(usize, u64), Arc<SharedBuild>>,
    built: AtomicU64,
    reused: AtomicU64,
}

impl BuildRegistry {
    /// An empty registry.
    pub fn new() -> BuildRegistry {
        BuildRegistry::default()
    }

    /// The shared build for `table` at `epoch`, computing the layout on
    /// first request, plus whether *this* call computed it. The first
    /// requester (`true`) has just registered the layout — it still owes
    /// the build work itself, so its own pattern keeps the charged build
    /// phase; later requesters (`false`) probe the registered layout and
    /// skip the build. The hit path is a wait-free snapshot read; two
    /// concurrent first requests may both compute the layout but publish
    /// (and hand out) exactly one build.
    pub fn get_or_build(&self, table: usize, epoch: u64, keys: &[u64]) -> (Arc<SharedBuild>, bool) {
        if let Some(b) = self.entries.snapshot().get(&(table, epoch)) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(b), false);
        }
        let mut computed = false;
        let b = self.entries.get_or_insert_with((table, epoch), || {
            computed = true;
            let slots = hash::table_slots(keys.len() as u64);
            Arc::new(SharedBuild {
                table,
                epoch,
                region: Region::new(format!("H#{table}@{epoch}"), slots, ENTRY_BYTES),
                layout: Arc::new(hash::build_layout(keys)),
            })
        });
        if computed {
            self.built.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reused.fetch_add(1, Ordering::Relaxed);
        }
        (b, computed)
    }

    /// Drop builds from statistics epochs before `epoch` (their tables'
    /// data changed). Returns how many were retired.
    pub fn retire_epochs_before(&self, epoch: u64) -> u64 {
        self.entries.retain(|(_, e), _| *e >= epoch) as u64
    }

    /// Number of builds currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no builds are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds computed (registry misses).
    pub fn built(&self) -> u64 {
        self.built.load(Ordering::Relaxed)
    }

    /// Requests served from an existing build (reuses).
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_the_same_build() {
        let reg = BuildRegistry::new();
        let keys: Vec<u64> = (0..500).map(|i| (i * 7) % 400).collect();
        let (a, first) = reg.get_or_build(0, 0, &keys);
        let (b, second) = reg.get_or_build(0, 0, &keys);
        assert!(first, "first request computes");
        assert!(!second, "second request reuses");
        assert!(Arc::ptr_eq(&a, &b), "one build per (table, epoch)");
        assert_eq!(a.region.id(), b.region.id(), "one canonical region");
        assert_eq!(reg.built(), 1);
        assert_eq!(reg.reused(), 1);
        // A different epoch is a different build with its own region.
        let (c, _) = reg.get_or_build(0, 1, &keys);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_ne!(a.region.id(), c.region.id());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn layout_matches_the_pure_function() {
        let reg = BuildRegistry::new();
        let keys: Vec<u64> = (0..300).map(|i| (i * 13) % 250).collect();
        let (b, _) = reg.get_or_build(2, 5, &keys);
        assert_eq!(*b.layout, hash::build_layout(&keys));
        assert_eq!(b.region.bytes(), b.layout.len() as u64 * 8);
        assert_eq!(b.table, 2);
        assert_eq!(b.epoch, 5);
    }

    #[test]
    fn retire_drops_stale_epochs_only() {
        let reg = BuildRegistry::new();
        let keys = vec![1, 2, 3];
        reg.get_or_build(0, 0, &keys);
        reg.get_or_build(1, 0, &keys);
        reg.get_or_build(0, 1, &keys);
        assert_eq!(reg.retire_epochs_before(1), 2);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        assert_eq!(reg.retire_epochs_before(1), 0);
    }

    #[test]
    fn strip_build_phase_drops_the_build_and_renames_the_probe() {
        // σ(T0) ⋈H T1 as the optimizer composes it.
        let t1 = Region::new("T1", 400, 8);
        let s = Region::new("S", 500, 8);
        let h = Region::new("H", hash::table_slots(400), ENTRY_BYTES);
        let j = Region::new("J", 500, 16);
        let select = Pattern::s_trav(Region::new("T0", 2_000, 8));
        let pattern = Pattern::seq(vec![
            select.clone(),
            gcm_core::library::hash_join(s.clone(), t1.clone(), h.clone(), j.clone()),
        ]);
        let canon = Region::new("H#1@0", hash::table_slots(400), ENTRY_BYTES);
        let stripped = strip_build_phase(&pattern, "T1", &canon).unwrap();
        let text = stripped.to_string();
        assert!(
            !text.contains("r_trav(H"),
            "build phase must be gone: {text}"
        );
        assert!(
            text.contains("r_acc(H#1@0"),
            "probe must use the canonical region: {text}"
        );
        assert!(gcm_core::references_region(&stripped, canon.id()));
        assert!(!gcm_core::references_region(&stripped, h.id()));
        // A pattern without a matching build phase is left alone.
        assert!(strip_build_phase(&pattern, "T9", &canon).is_none());
        assert!(strip_build_phase(&select, "T1", &canon).is_none());
        // A mis-sized canonical region (stale layout) refuses to match.
        let wrong = Region::new("H#1@0", 8, ENTRY_BYTES);
        assert!(strip_build_phase(&pattern, "T1", &wrong).is_none());
    }

    #[test]
    fn concurrent_requests_share_one_build() {
        let reg = Arc::new(BuildRegistry::new());
        let keys: Vec<u64> = (0..200).collect();
        let builds: Vec<Arc<SharedBuild>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let keys = keys.clone();
                    s.spawn(move || reg.get_or_build(3, 7, &keys).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = &builds[0];
        for b in &builds {
            assert!(Arc::ptr_eq(first, b), "all threads must get one build");
        }
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.built() + reg.reused(), 8);
    }
}
