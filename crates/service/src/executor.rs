//! The executor pool: running an admitted batch on real worker
//! threads, each query over its own simulated hierarchy view.
//!
//! Mirrors the measured side of the multi-core model
//! ([`gcm_engine::parallel`]): a batch of `d` queries runs as `d`
//! [`std::thread::scope`] workers, each executing its physical plan
//! through the serial plan executor over an [`ExecContext`] on its own
//! view of the machine — full private levels, plus the slice of every
//! shared level the scheduler *allocated* to it. Allocations are
//! footprint-proportional ([`member_views`]), i.e. the service enforces
//! exactly the Eq 5.3 shares the admission controller priced (the way
//! a real serving system partitions its buffer pool or LLC ways among
//! admitted queries) — so a batch the model admitted cannot be wrecked
//! by a co-runner grabbing more of the shared level than its footprint
//! warrants. A query's measured latency is its charged memory time
//! plus the per-op CPU charge (Eq 6.1), and the batch's measured wall
//! is the slowest member, which is what the `⊙` composition predicted.

use crate::builds::SharedBuild;
use gcm_core::{
    footprint_lines, footprint_lines_excluding, references_region, Geometry, Pattern, Region,
    RegionId,
};
use gcm_engine::plan::{
    self, BuildSource, ExecTracer, NoPrebuilt, NoTrace, PhysicalPlan, PlanError, PrebuiltBuild,
    SpanTracer,
};
use gcm_engine::{ExecContext, MemoryBackend, NativeBackend, Relation};
use gcm_hardware::{HardwareSpec, Sharing};
use gcm_obs::SpanRecorder;
use std::sync::Arc;

/// The builds one batch member may reuse, as a [`BuildSource`] for the
/// plan executor: `prebuilt(t)` answers with the member's shared build
/// over table `t`, if it holds one.
#[derive(Debug, Default)]
pub struct MemberBuilds {
    builds: Vec<Arc<SharedBuild>>,
}

impl MemberBuilds {
    /// A source over the given shared builds.
    pub fn new(builds: Vec<Arc<SharedBuild>>) -> MemberBuilds {
        MemberBuilds { builds }
    }
}

impl BuildSource for MemberBuilds {
    fn prebuilt(&self, table: usize) -> Option<PrebuiltBuild> {
        self.builds
            .iter()
            .find(|b| b.table == table)
            .map(|b| PrebuiltBuild {
                region: b.region.clone(),
                layout: Arc::clone(&b.layout),
            })
    }
}

/// One registered table's data: the key column the per-worker contexts
/// materialize into their simulated memories.
#[derive(Debug, Clone)]
pub struct TableData {
    /// Region/relation display name.
    pub name: String,
    /// The key column.
    pub keys: Vec<u64>,
    /// Tuple width in bytes.
    pub w: u64,
}

/// One query's measured execution inside a batch.
#[derive(Debug, Clone)]
pub struct ExecutedQuery {
    /// Output cardinality.
    pub output_n: u64,
    /// FNV-1a hash of the output relation's raw bytes — the
    /// result-equality surface: two executions of the same query agree
    /// byte for byte iff their hashes agree (with or without shared
    /// builds, on any backend).
    pub output_hash: u64,
    /// Measured elapsed time: charged (simulated) memory latency plus
    /// `per_op_ns ×` logical ops (Eq 6.1), ns.
    pub measured_ns: f64,
    /// Logical CPU operations the query performed.
    pub ops: u64,
}

/// FNV-1a over a byte slice (order-sensitive, so tuple order matters —
/// exactly what byte identity means).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-member machine views of a batch: each member keeps every
/// [`Private`](Sharing::Private) level whole and receives, at every
/// [`Shared`](Sharing::Shared) level, a capacity slice proportional to
/// its pattern's footprint there — the allocation rule of Eq 5.3, which
/// is also what the admission controller's
/// [`batch_cost`](gcm_core::CostModel::batch_cost) priced. A singleton
/// batch sees the whole machine.
pub fn member_views(spec: &HardwareSpec, patterns: &[&Pattern]) -> Vec<HardwareSpec> {
    member_views_shared(spec, patterns, &[])
}

/// [`member_views`] with *shared data*: regions in `shared` (immutable
/// builds several members probe) are counted once in each shared level's
/// allocation denominator, mirroring the pricing rule of
/// [`gcm_core::CostModel::batch_cost_shared`] — so the enforcement stays
/// exactly what the admission controller priced. A member's own claim
/// (numerator) keeps its full footprint, clamped at the whole level.
pub fn member_views_shared(
    spec: &HardwareSpec,
    patterns: &[&Pattern],
    shared: &[Region],
) -> Vec<HardwareSpec> {
    let d = patterns.len();
    if d <= 1 {
        return patterns.iter().map(|_| spec.thread_view(1)).collect();
    }
    let mut shared_unique: Vec<&Region> = Vec::with_capacity(shared.len());
    for r in shared {
        if !shared_unique.iter().any(|s| s.id() == r.id()) {
            shared_unique.push(r);
        }
    }
    let shared_ids: Vec<RegionId> = shared_unique.iter().map(|r| r.id()).collect();
    // Full footprint of every member at every level (its claim), and the
    // capacity denominator with shared regions counted once.
    let feet: Vec<Vec<f64>> = patterns
        .iter()
        .map(|p| {
            spec.levels()
                .iter()
                .map(|lvl| footprint_lines(p, &Geometry::of(lvl)))
                .collect()
        })
        .collect();
    let denom: Vec<f64> = spec
        .levels()
        .iter()
        .map(|lvl| {
            let geo = Geometry::of(lvl);
            let mut total: f64 = patterns
                .iter()
                .map(|p| footprint_lines_excluding(p, &geo, &shared_ids))
                .sum();
            for r in &shared_unique {
                if patterns.iter().any(|p| references_region(p, r.id())) {
                    total += r.lines(geo.b as u64).max(1.0);
                }
            }
            total
        })
        .collect();
    (0..d)
        .map(|i| {
            let levels = spec
                .levels()
                .iter()
                .enumerate()
                .map(|(l, lvl)| {
                    if lvl.sharing != Sharing::Shared {
                        return lvl.clone();
                    }
                    let share = if denom[l] > 0.0 {
                        (feet[i][l] / denom[l]).min(1.0)
                    } else {
                        1.0 / d as f64
                    };
                    let mut v = lvl.clone();
                    let lines = ((lvl.lines() as f64 * share) as u64).max(1);
                    v.capacity = lines * lvl.line;
                    v
                })
                .collect();
            HardwareSpec::new(
                format!("{} [member {i}/{d} view]", spec.name),
                spec.cpu_mhz,
                levels,
            )
            .expect("member view of a valid spec is valid")
        })
        .collect()
}

/// One batch member's run on any backend: materialize the tables the
/// plan references into the worker's context (host-side, before the
/// measured interval — the service owns the data; unreferenced catalog
/// slots become empty placeholders so scan indices stay valid), then
/// execute the plan through [`gcm_engine::plan::execute`] and measure.
fn run_member<B: MemoryBackend>(
    ctx: &mut ExecContext<B>,
    tables: &[Arc<TableData>],
    plan: &PhysicalPlan,
    builds: &dyn BuildSource,
    tracer: &mut dyn ExecTracer<B>,
) -> Result<(u64, u64, gcm_engine::RunStats<B>), PlanError> {
    let referenced = plan.tables();
    let rels: Vec<Relation> = tables
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if referenced.contains(&i) {
                ctx.relation_from_keys(&t.name, &t.keys, t.w)
            } else {
                ctx.relation(&t.name, 0, t.w)
            }
        })
        .collect();
    let (run, stats) = ctx.measure(|c| plan::execute_traced(c, plan, &rels, builds, tracer));
    run.map(|r| {
        let hash = fnv1a(&ctx.relation_bytes(&r.output));
        (r.output.n(), hash, stats)
    })
}

/// Execute `plans` as one batch of `plans.len()` concurrent workers,
/// each on its own footprint-proportional view ([`member_views`], built
/// from `patterns` — the members' whole-plan patterns in batch order).
/// Each worker materializes the tables its plan scans into its own
/// simulated memory (host-side, uncharged; a worker's view simulates
/// its core's caches, not a private copy of the database) and runs its
/// plan (`run_member`). Results come back in batch order.
pub fn execute_batch(
    spec: &HardwareSpec,
    tables: &[Arc<TableData>],
    plans: &[&PhysicalPlan],
    patterns: &[&Pattern],
    per_op_ns: f64,
) -> Result<Vec<ExecutedQuery>, PlanError> {
    let no_builds: Vec<MemberBuilds> = plans.iter().map(|_| MemberBuilds::default()).collect();
    execute_batch_shared(spec, tables, plans, patterns, per_op_ns, &no_builds, &[])
}

/// [`execute_batch`] with shared build sides: `builds[i]` is member
/// `i`'s [`MemberBuilds`] (the immutable hash-join builds its plan may
/// probe instead of building), and `shared` the canonical regions of
/// every build referenced by the batch — the member views allocate the
/// shared levels with those regions counted once
/// ([`member_views_shared`]), enforcing exactly what
/// [`gcm_core::CostModel::batch_cost_shared`] priced at admission.
pub fn execute_batch_shared(
    spec: &HardwareSpec,
    tables: &[Arc<TableData>],
    plans: &[&PhysicalPlan],
    patterns: &[&Pattern],
    per_op_ns: f64,
    builds: &[MemberBuilds],
    shared: &[Region],
) -> Result<Vec<ExecutedQuery>, PlanError> {
    execute_batch_observed(
        spec, tables, plans, patterns, per_op_ns, builds, shared, None,
    )
}

/// [`execute_batch_shared`] with span tracing: when `spans` holds an
/// enabled [`SpanRecorder`], every worker registers its own lane and
/// records one [`Execute`](gcm_obs::SpanKind::Execute) span per
/// physical operator it runs (via [`SpanTracer`]), carrying the
/// operator's charged-time and per-level miss counter deltas. Tracing
/// never changes results — the traced and untraced paths run the same
/// operators on the same data (`observability_tracing_is_free` in the
/// service tests pins byte identity).
#[allow(clippy::too_many_arguments)]
pub fn execute_batch_observed(
    spec: &HardwareSpec,
    tables: &[Arc<TableData>],
    plans: &[&PhysicalPlan],
    patterns: &[&Pattern],
    per_op_ns: f64,
    builds: &[MemberBuilds],
    shared: &[Region],
    spans: Option<&SpanRecorder>,
) -> Result<Vec<ExecutedQuery>, PlanError> {
    assert_eq!(plans.len(), patterns.len());
    assert_eq!(plans.len(), builds.len());
    let views = member_views_shared(spec, patterns, shared);
    let results: Vec<Result<ExecutedQuery, PlanError>> = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .zip(views)
            .zip(builds)
            .map(|((plan, view), member)| {
                s.spawn(move || {
                    let mut ctx = ExecContext::new(view);
                    let run = match spans {
                        // The enabled check keeps the disabled path free
                        // of lane registration, not just span stores.
                        Some(rec) if rec.enabled() => {
                            let mut sink = rec.sink();
                            let mut tracer = SpanTracer::new(&mut sink);
                            run_member(&mut ctx, tables, plan, member, &mut tracer)
                        }
                        _ => run_member(&mut ctx, tables, plan, member, &mut NoTrace),
                    };
                    run.map(|(output_n, output_hash, stats)| ExecutedQuery {
                        output_n,
                        output_hash,
                        measured_ns: stats.total_ns(per_op_ns),
                        ops: stats.ops,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Execute `plans` as one batch of concurrent workers on the **host's
/// real memory**: each query runs through the same plan executor over an
/// [`ExecContext::native`] — real buffers, real loads, wall-clock
/// latency. No member views are constructed (the hardware shares its
/// caches itself; the footprint-proportional allocation the simulated
/// pool enforces is exactly what the model *predicts* real hardware
/// contention to look like), so comparing these latencies against the
/// admission controller's `⊙` prices is the service-level
/// calibrate → model → measure check. Results are byte-identical to the
/// simulated pool's; `measured_ns` is wall time over the plan execution
/// only (table materialization happens before the measured interval,
/// like the simulated pool's uncharged setup) — but it still contains
/// the in-plan host-side oracle passes, output allocation, and CPU
/// work, so compare against predictions with generous bounds.
pub fn execute_batch_native(
    tables: &[Arc<TableData>],
    plans: &[&PhysicalPlan],
) -> Result<Vec<ExecutedQuery>, PlanError> {
    // Pre-size each worker's arena from the catalog footprint so the
    // measured interval contains no growth reallocations: inputs plus
    // headroom for partitions/hash tables/outputs (≈4× input bytes
    // covers every plan shape the planner emits).
    let table_bytes: u64 = tables.iter().map(|t| t.keys.len() as u64 * t.w).sum();
    let arena = (4 * table_bytes).clamp(1 << 16, 1 << 30) as usize;
    let results: Vec<Result<ExecutedQuery, PlanError>> = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                s.spawn(move || {
                    let mut ctx = ExecContext::native_with_capacity(arena);
                    run_member(&mut ctx, tables, plan, &NoPrebuilt, &mut NoTrace).map(
                        |(output_n, output_hash, stats)| ExecutedQuery {
                            output_n,
                            output_hash,
                            measured_ns: NativeBackend::elapsed_ns(&stats.mem),
                            ops: stats.ops,
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("native service worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_engine::planner::JoinAlgorithm;
    use gcm_hardware::presets;
    use gcm_workload::Workload;

    fn catalog() -> Vec<Arc<TableData>> {
        let mut wl = Workload::new(61);
        let star = wl.star_scenario(2_000, 400, 1);
        vec![
            Arc::new(TableData {
                name: "F".into(),
                keys: star.fact,
                w: 8,
            }),
            Arc::new(TableData {
                name: "D".into(),
                keys: star.dims[0].clone(),
                w: 8,
            }),
        ]
    }

    #[test]
    fn batch_members_agree_with_serial_execution() {
        let spec = presets::tiny_smp(4);
        let tables = catalog();
        let select = PhysicalPlan::scan(0).select_lt(100);
        let join = PhysicalPlan::scan(0)
            .select_lt(200)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .group_count();
        let eps = Pattern::empty();
        let batch = execute_batch(&spec, &tables, &[&select, &join], &[&eps, &eps], 4.0).unwrap();
        assert_eq!(batch.len(), 2);
        // Each member's result matches its own serial run (results
        // never depend on co-runners — only timings do).
        for (plan, got) in [&select, &join].into_iter().zip(&batch) {
            let solo = execute_batch(&spec, &tables, &[plan], &[&eps], 4.0).unwrap();
            assert_eq!(solo[0].output_n, got.output_n);
            assert_eq!(solo[0].output_hash, got.output_hash);
            assert_eq!(solo[0].ops, got.ops);
            assert!(got.measured_ns > 0.0);
        }
    }

    #[test]
    fn shared_level_contention_shows_in_measured_time() {
        // The same query measured alone vs inside a 4-way batch: the
        // member views shrink the shared L2, so the batched run can
        // only be slower or equal.
        let spec = presets::tiny_smp(4);
        let tables = catalog();
        let join = PhysicalPlan::scan(0)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .group_count();
        let eps = Pattern::empty();
        let solo = execute_batch(&spec, &tables, &[&join], &[&eps], 4.0).unwrap()[0].measured_ns;
        let four = execute_batch(
            &spec,
            &tables,
            &[&join, &join, &join, &join],
            &[&eps, &eps, &eps, &eps],
            4.0,
        )
        .unwrap();
        for q in &four {
            assert!(
                q.measured_ns >= solo * 0.999,
                "batched {} vs solo {solo}",
                q.measured_ns
            );
        }
    }

    #[test]
    fn member_views_split_shared_levels_by_footprint() {
        use gcm_core::Region;
        let spec = presets::tiny_smp(4); // L2 shared (16 KB), L1/TLB private
        let big = Pattern::r_trav(Region::new("B", 3_000, 8)); // 24 KB
        let small = Pattern::r_trav(Region::new("S", 1_000, 8)); // 8 KB
        let views = member_views(&spec, &[&big, &small]);
        assert_eq!(views.len(), 2);
        // Private levels stay whole.
        for v in &views {
            assert_eq!(
                v.level("L1").unwrap().capacity,
                spec.level("L1").unwrap().capacity
            );
        }
        // The shared L2 splits 3:1 (footprints 24 KB : 8 KB).
        let l2 = |v: &HardwareSpec| v.level("L2").unwrap().capacity;
        assert!(l2(&views[0]) > 2 * l2(&views[1]));
        let total = l2(&views[0]) + l2(&views[1]);
        let full = spec.level("L2").unwrap().capacity;
        assert!(total <= full && total >= full / 2, "split covers the level");
        // A singleton sees the whole machine.
        let solo = member_views(&spec, &[&big]);
        assert_eq!(l2(&solo[0]), full);
        // Zero-footprint members fall back to an even split.
        let eps = Pattern::empty();
        let even = member_views(&spec, &[&eps, &eps]);
        assert_eq!(l2(&even[0]), l2(&even[1]));
    }

    #[test]
    fn native_batch_matches_simulated_results() {
        // Serving from native memory: same outputs and logical work as
        // the simulated pool, real wall-clock latencies.
        let spec = presets::tiny_smp(4);
        let tables = catalog();
        let select = PhysicalPlan::scan(0).select_lt(100);
        let join = PhysicalPlan::scan(0)
            .select_lt(200)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .group_count();
        let eps = Pattern::empty();
        let sim = execute_batch(&spec, &tables, &[&select, &join], &[&eps, &eps], 4.0).unwrap();
        let native = execute_batch_native(&tables, &[&select, &join]).unwrap();
        assert_eq!(native.len(), 2);
        for (s, n) in sim.iter().zip(&native) {
            assert_eq!(s.output_n, n.output_n);
            assert_eq!(
                s.output_hash, n.output_hash,
                "bytes must agree across backends"
            );
            assert_eq!(s.ops, n.ops);
            assert!(n.measured_ns > 0.0, "wall clock must advance");
        }
    }

    #[test]
    fn plan_errors_surface() {
        let spec = presets::tiny_smp(2);
        let tables = catalog();
        let bad = PhysicalPlan::scan(7);
        let eps = Pattern::empty();
        let err = execute_batch(&spec, &tables, &[&bad], &[&eps], 4.0).unwrap_err();
        assert!(matches!(err, PlanError::UnknownTable { table: 7, .. }));
    }
}
