//! The plan cache: memoized optimizer output, keyed by (logical-plan
//! fingerprint, statistics epoch).
//!
//! A serving workload sees the same parameterised plan shapes over and
//! over, and whole-plan optimization (beam search over join algorithms,
//! fan-outs, and DOPs) is the expensive step — so the service memoizes
//! [`optimize_and_lower`](gcm_engine::plan::optimize_and_lower) per
//! key. The epoch half of the key comes from
//! [`StatsCatalog`](gcm_engine::plan::StatsCatalog): when statistics
//! drift past the threshold the epoch bumps, every old key becomes
//! unreachable, and the next lookup re-optimizes against the fresh
//! statistics.
//!
//! The cache is shared by the executor-pool threads, so it must be
//! concurrency-correct **and** contention-free on the hot path. Entries
//! live in a [`gcm_trie::TrieMap`]: a hit is a wait-free snapshot read
//! (no mutex at all — the structure that made lookups a serialization
//! point at high reader counts is gone; see the `plan_cache_contention`
//! bench), while a miss takes the trie's writer path once to install a
//! per-key [`OnceLock`] slot. The slot guarantees that many threads
//! racing on one key run the optimizer **once** and everyone else
//! blocks until the winner's result is published — never a deadlock,
//! never a duplicated optimization (asserted by the
//! [`PlanCache::optimizer_runs`] counter in the property tests).
//!
//! The pre-trie implementation is kept as `MutexPlanCache` behind the
//! `mutex-baseline` feature, solely so the contention bench can measure
//! what was replaced.

use gcm_engine::plan::{LogicalPlan, PlanError, PlannedQuery};
use gcm_trie::TrieMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A plan-cache key: the logical plan's structural fingerprint
/// ([`LogicalPlan::fingerprint`](gcm_engine::plan::LogicalPlan::fingerprint))
/// paired with the statistics epoch it was optimized under.
pub type PlanKey = (u64, u64);

type Slot = Arc<OnceLock<(LogicalPlan, Result<Arc<PlannedQuery>, PlanError>)>>;

/// A concurrent memo table from [`PlanKey`] to optimized plans, with
/// wait-free hit-path lookups over trie snapshots.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: TrieMap<PlanKey, Slot>,
    hits: AtomicU64,
    misses: AtomicU64,
    optimizer_runs: AtomicU64,
    retired: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Look `key` up, running `optimize` to fill the entry on a miss.
    /// Concurrent callers of the same key never run `optimize` twice:
    /// one thread optimizes, the rest block on the slot and share the
    /// result. Errors are cached too (a plan that cannot be optimized
    /// under this epoch's statistics will not be re-attempted until the
    /// epoch moves).
    ///
    /// `plan` is the logical plan the key's fingerprint half was
    /// computed from; the entry stores it, and a hit whose stored plan
    /// differs (a 64-bit fingerprint collision) falls back to a fresh,
    /// uncached optimization instead of silently returning the wrong
    /// plan.
    pub fn get_or_optimize(
        &self,
        key: PlanKey,
        plan: &LogicalPlan,
        optimize: impl FnOnce() -> Result<PlannedQuery, PlanError>,
    ) -> Result<Arc<PlannedQuery>, PlanError> {
        // Hit path: a wait-free snapshot read, no lock anywhere. Only a
        // vacant key takes the trie's writer path to install its slot.
        let slot: Slot = match self.entries.snapshot().get(&key) {
            Some(slot) => slot.clone(),
            None => self.entries.get_or_insert_with(key, Slot::default),
        };
        // No trie lock is held while optimizing: a long optimization
        // must never serialize lookups or installs of other keys.
        let mut optimize = Some(optimize);
        let mut ran = false;
        let (stored, result) = slot.get_or_init(|| {
            ran = true;
            self.optimizer_runs.fetch_add(1, Ordering::Relaxed);
            let f = optimize.take().expect("init closure runs once");
            (plan.clone(), f().map(Arc::new))
        });
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else if stored != plan {
            // Fingerprint collision: two distinct trees share the key.
            // Serve the loser uncached — correctness over memoization.
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.optimizer_runs.fetch_add(1, Ordering::Relaxed);
            let f = optimize.take().expect("closure unused on this path");
            return f().map(Arc::new);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Drop every entry whose epoch predates `epoch`. Called after a
    /// stats-drift epoch bump: the stale keys can never be looked up
    /// again, so this only bounds memory, it is not needed for
    /// correctness. The survivors are published as one new trie root;
    /// readers mid-lookup keep whatever snapshot they pinned.
    pub fn retire_epochs_before(&self, epoch: u64) -> usize {
        let removed = self.entries.retain(|(_, e), _| *e >= epoch);
        self.retired.fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Number of cached entries (including in-flight slots).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a published entry (or joined an in-flight
    /// optimization).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to optimize.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times the optimizer actually ran — equals [`PlanCache::misses`];
    /// kept separate so tests can assert the single-optimization
    /// guarantee directly against the closure invocations.
    pub fn optimizer_runs(&self) -> u64 {
        self.optimizer_runs.load(Ordering::Relaxed)
    }

    /// Entries dropped by [`PlanCache::retire_epochs_before`] so far.
    pub fn retired(&self) -> u64 {
        self.retired.load(Ordering::Relaxed)
    }

    /// Hit fraction of all lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m > 0.0 {
            h / (h + m)
        } else {
            0.0
        }
    }
}

/// The pre-trie plan cache: every lookup — hit or miss — serializes on
/// one mutex around a `HashMap`. Kept only as the baseline the
/// `plan_cache_contention` bench measures [`PlanCache`] against; not
/// part of the serving path.
#[cfg(feature = "mutex-baseline")]
#[derive(Debug, Default)]
pub struct MutexPlanCache {
    entries: std::sync::Mutex<std::collections::HashMap<PlanKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    optimizer_runs: AtomicU64,
}

#[cfg(feature = "mutex-baseline")]
impl MutexPlanCache {
    /// An empty cache.
    pub fn new() -> MutexPlanCache {
        MutexPlanCache::default()
    }

    /// Mutex-serialized equivalent of [`PlanCache::get_or_optimize`]
    /// (identical slot protocol, contended entry map).
    pub fn get_or_optimize(
        &self,
        key: PlanKey,
        plan: &LogicalPlan,
        optimize: impl FnOnce() -> Result<PlannedQuery, PlanError>,
    ) -> Result<Arc<PlannedQuery>, PlanError> {
        let slot: Slot = {
            let mut entries = self.entries.lock().expect("plan cache poisoned");
            entries.entry(key).or_default().clone()
        };
        let mut optimize = Some(optimize);
        let mut ran = false;
        let (stored, result) = slot.get_or_init(|| {
            ran = true;
            self.optimizer_runs.fetch_add(1, Ordering::Relaxed);
            let f = optimize.take().expect("init closure runs once");
            (plan.clone(), f().map(Arc::new))
        });
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else if stored != plan {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.optimizer_runs.fetch_add(1, Ordering::Relaxed);
            let f = optimize.take().expect("closure unused on this path");
            return f().map(Arc::new);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Lookups that found a published entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_core::CostModel;
    use gcm_engine::plan::{optimize_and_lower, LogicalPlan, TableStats};
    use gcm_hardware::presets;

    fn setup() -> (CostModel, LogicalPlan, Vec<TableStats>) {
        let model = CostModel::new(presets::tiny());
        let plan = LogicalPlan::scan(0)
            .select_lt(100)
            .join(LogicalPlan::scan(1));
        let stats = vec![
            TableStats::uniform(2_000, 8, 400, false),
            TableStats::key_column(400, 8, false),
        ];
        (model, plan, stats)
    }

    #[test]
    fn second_lookup_hits_and_returns_the_same_plan() {
        let (model, plan, stats) = setup();
        let cache = PlanCache::new();
        let key = (plan.fingerprint(), 0);
        let a = cache
            .get_or_optimize(key, &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        let b = cache
            .get_or_optimize(key, &plan, || panic!("must not re-optimize"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.optimizer_runs(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn epochs_partition_the_key_space() {
        let (model, plan, stats) = setup();
        let cache = PlanCache::new();
        let f = plan.fingerprint();
        cache
            .get_or_optimize((f, 0), &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        // A new epoch misses even though the fingerprint matches.
        cache
            .get_or_optimize((f, 1), &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        assert_eq!(cache.optimizer_runs(), 2);
        assert_eq!(cache.len(), 2);
        // Retiring the old epoch drops exactly one entry.
        assert_eq!(cache.retire_epochs_before(1), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.retired(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn errors_are_cached_per_epoch() {
        let (model, _, stats) = setup();
        let cache = PlanCache::new();
        let bad = LogicalPlan::scan(9);
        let key = (bad.fingerprint(), 0);
        let err = cache
            .get_or_optimize(key, &bad, || optimize_and_lower(&model, &bad, &stats))
            .unwrap_err();
        assert!(matches!(err, PlanError::UnknownTable { table: 9, .. }));
        // The second lookup returns the cached error without running.
        let again = cache
            .get_or_optimize(key, &bad, || panic!("must not re-optimize"))
            .unwrap_err();
        assert_eq!(err, again);
        assert_eq!(cache.optimizer_runs(), 1);
    }

    #[test]
    fn fingerprint_collisions_are_served_uncached() {
        // Force a "collision" by looking a different tree up under an
        // occupied key: the cache must notice the stored plan differs
        // and optimize the loser fresh instead of returning the wrong
        // plan.
        let (model, plan, stats) = setup();
        let cache = PlanCache::new();
        let key = (plan.fingerprint(), 0);
        cache
            .get_or_optimize(key, &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        let other = LogicalPlan::scan(0)
            .select_lt(999)
            .join(LogicalPlan::scan(1));
        let got = cache
            .get_or_optimize(key, &other, || optimize_and_lower(&model, &other, &stats))
            .unwrap();
        let fresh = optimize_and_lower(&model, &other, &stats).unwrap();
        assert_eq!(got.plan, fresh.plan, "loser must get its own plan");
        assert_eq!(cache.optimizer_runs(), 2);
        assert_eq!(cache.hits(), 0);
        // The winner's entry is untouched.
        cache
            .get_or_optimize(key, &plan, || panic!("winner stays cached"))
            .unwrap();
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lookups_keep_hitting_across_a_concurrent_retire() {
        // A reader that pinned its snapshot before a retire keeps
        // resolving against it; afterwards the key is simply gone.
        let (model, plan, stats) = setup();
        let cache = PlanCache::new();
        let old_key = (plan.fingerprint(), 0);
        let new_key = (plan.fingerprint(), 1);
        cache
            .get_or_optimize(old_key, &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        cache
            .get_or_optimize(new_key, &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        assert_eq!(cache.retire_epochs_before(1), 1);
        // The retired key misses (and re-optimizes) rather than erroring.
        cache
            .get_or_optimize(old_key, &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        assert_eq!(cache.optimizer_runs(), 3);
        // The surviving key still hits.
        cache
            .get_or_optimize(new_key, &plan, || panic!("survivor stays cached"))
            .unwrap();
        assert_eq!(cache.hits(), 1);
    }
}
