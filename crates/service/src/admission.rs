//! ⊙-priced admission control: deciding which pending queries may run
//! together.
//!
//! PR 3 let the cost model decide the degree of parallelism *within*
//! one query; here the same `⊙`-across-cores rule
//! ([`CostModel::batch_cost`]) decides concurrency *across* queries. A
//! batch of queries running on separate cores composes their whole
//! compound patterns on every shared cache level (footprint-
//! proportional shares, Eq 5.3), so the model predicts exactly the
//! contention a coexisting mix will suffer — and the scheduler admits a
//! query into the next batch only while doing so beats appending it
//! serially:
//!
//! ```text
//! admit q into B  ⇔  wall(B ⊙ q) < wall(B) + solo(q)
//! ```
//!
//! with `wall(B) = maxᵢ (memᵢ^⊙ + cpuᵢ) + |B| · dispatch` (the slowest
//! member, since members run concurrently, plus the per-worker dispatch
//! charge) and `solo(q)` the query's cold stand-alone time on one
//! worker. Streaming footprints compose almost freely, so scans and
//! point lookups batch up to the core budget; two queries whose
//! composed footprints overrun the shared level inflate `wall(B ⊙ q)`
//! past the serial sum and the scheduler backs off to running them one
//! after the other. Rejected candidates stay queued and are
//! reconsidered for the following batch.

use gcm_core::{CacheState, CostModel, Pattern, Region};
use gcm_workload::TenantClass;

/// Per-tenant-class SLO budgets: the wall-clock sojourn (arrival →
/// response) each class is allowed before the service would rather
/// fail fast than serve late. The shed pass
/// ([`crate::QueryService::next_batch_at`]) projects every queued
/// query's sojourn through the ⊙-priced drain rate and sheds the ones
/// whose projection overruns their class budget — low-priority classes
/// first, since the walk keeps work in [`TenantClass::priority`]
/// order and each kept query pushes the projection of everything
/// behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Budget for [`TenantClass::PointLookup`], ns.
    pub point_lookup_ns: f64,
    /// Budget for [`TenantClass::ScanHeavy`], ns.
    pub scan_heavy_ns: f64,
    /// Budget for [`TenantClass::JoinHeavy`], ns.
    pub join_heavy_ns: f64,
}

impl SloPolicy {
    /// The same budget for every class.
    pub fn uniform(budget_ns: f64) -> SloPolicy {
        SloPolicy {
            point_lookup_ns: budget_ns,
            scan_heavy_ns: budget_ns,
            join_heavy_ns: budget_ns,
        }
    }

    /// The budget for one class, ns.
    pub fn budget_ns(&self, class: TenantClass) -> f64 {
        match class {
            TenantClass::PointLookup => self.point_lookup_ns,
            TenantClass::ScanHeavy => self.scan_heavy_ns,
            TenantClass::JoinHeavy => self.join_heavy_ns,
        }
    }
}

/// One pending query, as the admission controller sees it: its
/// whole-plan compound pattern plus its predicted CPU time (Eq 6.1's
/// `T_cpu`, which concurrency cannot change — every query runs on its
/// own core).
#[derive(Debug, Clone)]
pub struct Candidate<'a> {
    /// The query's whole-plan pattern (from the cached
    /// [`PlannedQuery`](gcm_engine::plan::PlannedQuery)).
    pub pattern: &'a Pattern,
    /// Predicted CPU time, ns.
    pub cpu_ns: f64,
}

/// Scheduler knobs (see [`crate::ServiceConfig`] for the defaults).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Hard cap on batch size (the machine's core budget).
    pub max_batch: usize,
    /// Per-worker dispatch charge, ns — what a batch pays to put one
    /// more worker thread to work.
    pub dispatch_ns: f64,
}

/// The scheduler's verdict for one batch: which candidates (by index)
/// run together, and the prices the decision was based on.
#[derive(Debug, Clone)]
pub struct BatchDecision {
    /// Indices into the candidate slice, in admission order. The first
    /// candidate is always admitted (a singleton batch *is* serial
    /// execution).
    pub admitted: Vec<usize>,
    /// Predicted elapsed time of the batch: slowest member's
    /// `⊙`-composed memory time plus CPU, plus dispatch, ns.
    pub predicted_wall_ns: f64,
    /// Predicted elapsed time of running the admitted members one
    /// after the other instead, ns.
    pub predicted_serial_ns: f64,
    /// Per-admitted-member predicted time inside the batch (composed
    /// memory + CPU), ns — the per-query latency forecast.
    pub per_query_ns: Vec<f64>,
}

impl BatchDecision {
    /// Predicted speedup of the batch over serial execution (≥ 1 for
    /// any batch the controller forms; exactly 1 for singletons).
    pub fn predicted_speedup(&self) -> f64 {
        if self.predicted_wall_ns > 0.0 {
            self.predicted_serial_ns / self.predicted_wall_ns
        } else {
            1.0
        }
    }
}

/// Price a forming batch: `⊙`-composed per-query memory plus each
/// member's CPU, the wall as the slowest member plus dispatch, and the
/// serial fallback as the sum of solo times.
fn price(
    model: &CostModel,
    patterns: &[Pattern],
    cpus: &[f64],
    cfg: &AdmissionConfig,
    shared: &[Region],
) -> (f64, f64, Vec<f64>) {
    let batch = model.batch_cost_shared(patterns, &CacheState::cold(), shared);
    let per_query: Vec<f64> = batch
        .per_query_ns
        .iter()
        .zip(cpus)
        .map(|(mem, cpu)| mem + cpu)
        .collect();
    let wall =
        per_query.iter().copied().fold(0.0, f64::max) + cfg.dispatch_ns * patterns.len() as f64;
    let serial = batch
        .solo_ns
        .iter()
        .zip(cpus)
        .map(|(mem, cpu)| mem + cpu + cfg.dispatch_ns)
        .sum();
    (wall, serial, per_query)
}

/// Greedily form the next batch from `candidates` (the pending queue in
/// arrival order). Returns `None` on an empty queue. `shared` lists the
/// canonical regions of data candidates may *share* (immutable build
/// sides from the [`BuildRegistry`](crate::builds::BuildRegistry)):
/// pricing counts each such region once across the forming batch
/// (Eq 5.3 with shared data), so two queries probing the same build
/// look as cheap together as the composition they actually are. Pass
/// `&[]` when nothing is shared.
pub fn next_batch(
    model: &CostModel,
    candidates: &[Candidate<'_>],
    cfg: &AdmissionConfig,
    shared: &[Region],
) -> Option<BatchDecision> {
    if candidates.is_empty() {
        return None;
    }
    let max_batch = cfg.max_batch.max(1);
    // The forming batch, grown in place: each trial clones only the
    // candidate's pattern (popped again on rejection), never the
    // already-admitted members'.
    let mut patterns = vec![candidates[0].pattern.clone()];
    let mut cpus = vec![candidates[0].cpu_ns];
    let mut admitted = vec![0usize];
    let (mut wall, mut serial, mut per_query) = price(model, &patterns, &cpus, cfg, shared);
    for (idx, cand) in candidates.iter().enumerate().skip(1) {
        if patterns.len() >= max_batch {
            break;
        }
        patterns.push(cand.pattern.clone());
        cpus.push(cand.cpu_ns);
        let (t_wall, t_serial, t_per_query) = price(model, &patterns, &cpus, cfg, shared);
        // solo(q): the candidate's own serial contribution is the
        // difference of the serial sums (solo mem + cpu + dispatch).
        let solo = t_serial - serial;
        if t_wall < wall + solo {
            admitted.push(idx);
            (wall, serial, per_query) = (t_wall, t_serial, t_per_query);
        } else {
            patterns.pop();
            cpus.pop();
        }
    }
    Some(BatchDecision {
        admitted,
        predicted_wall_ns: wall,
        predicted_serial_ns: serial,
        per_query_ns: per_query,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_core::Region;
    use gcm_hardware::presets;

    fn cfg(max_batch: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_batch,
            dispatch_ns: 25_000.0,
        }
    }

    #[test]
    fn slo_policy_budgets_per_class() {
        let slo = SloPolicy {
            point_lookup_ns: 1_000.0,
            scan_heavy_ns: 2_000.0,
            join_heavy_ns: 3_000.0,
        };
        assert_eq!(slo.budget_ns(TenantClass::PointLookup), 1_000.0);
        assert_eq!(slo.budget_ns(TenantClass::ScanHeavy), 2_000.0);
        assert_eq!(slo.budget_ns(TenantClass::JoinHeavy), 3_000.0);
        let u = SloPolicy::uniform(500.0);
        for c in TenantClass::ALL {
            assert_eq!(u.budget_ns(c), 500.0);
        }
    }

    #[test]
    fn empty_queue_has_no_batch() {
        let model = CostModel::new(presets::tiny_smp(4));
        assert!(next_batch(&model, &[], &cfg(4), &[]).is_none());
    }

    #[test]
    fn streaming_queries_batch_to_the_core_budget() {
        let model = CostModel::new(presets::tiny_smp(4));
        let patterns: Vec<Pattern> = (0..6)
            .map(|i| Pattern::s_trav(Region::new(format!("Q{i}"), 100_000, 8)))
            .collect();
        let candidates: Vec<Candidate<'_>> = patterns
            .iter()
            .map(|p| Candidate {
                pattern: p,
                cpu_ns: 10_000.0,
            })
            .collect();
        let d = next_batch(&model, &candidates, &cfg(4), &[]).unwrap();
        assert_eq!(d.admitted, vec![0, 1, 2, 3], "core budget caps at 4");
        assert!(d.predicted_speedup() > 2.0, "{}", d.predicted_speedup());
        assert!(d.predicted_wall_ns < d.predicted_serial_ns);
        assert_eq!(d.per_query_ns.len(), 4);
    }

    #[test]
    fn contending_pair_backs_off_to_serial() {
        // Two repeated random traversals that each fit the shared L2
        // alone but thrash composed: the second must be rejected.
        let model = CostModel::new(presets::tiny_smp(4));
        let patterns: Vec<Pattern> = (0..2)
            .map(|i| Pattern::rr_trav(Region::new(format!("Q{i}"), 1_500, 8), 8, 64))
            .collect();
        let candidates: Vec<Candidate<'_>> = patterns
            .iter()
            .map(|p| Candidate {
                pattern: p,
                cpu_ns: 0.0,
            })
            .collect();
        let d = next_batch(&model, &candidates, &cfg(4), &[]).unwrap();
        assert_eq!(d.admitted, vec![0], "contending pair must serialize");
    }

    #[test]
    fn declared_sharing_admits_a_pair_that_would_otherwise_serialize() {
        // Two probe patterns over ONE table region that fits the shared
        // L2 once but not twice. Priced as private data, the pair
        // serializes; declared shared (one immutable build both probe),
        // the composition is admitted.
        let model = CostModel::new(presets::tiny_smp(4));
        let h = Region::new("H", 1_500, 8);
        let patterns: Vec<Pattern> = (0..2)
            .map(|i| {
                Pattern::conc(vec![
                    Pattern::s_trav(Region::new(format!("U{i}"), 2_000, 8)),
                    Pattern::r_acc(h.clone(), 200_000),
                ])
            })
            .collect();
        let candidates: Vec<Candidate<'_>> = patterns
            .iter()
            .map(|p| Candidate {
                pattern: p,
                cpu_ns: 0.0,
            })
            .collect();
        let private = next_batch(&model, &candidates, &cfg(4), &[]).unwrap();
        assert_eq!(private.admitted, vec![0], "private builds must serialize");
        let shared = next_batch(&model, &candidates, &cfg(4), &[h]).unwrap();
        assert_eq!(shared.admitted, vec![0, 1], "shared build must batch");
        assert!(shared.predicted_speedup() > 1.0);
    }

    #[test]
    fn rejected_candidate_does_not_block_later_ones() {
        // A contending twin of the head sits between two streaming
        // queries: it is skipped, the streamers are admitted around it.
        let model = CostModel::new(presets::tiny_smp(4));
        let head = Pattern::rr_trav(Region::new("H", 1_500, 8), 8, 64);
        let twin = Pattern::rr_trav(Region::new("T", 1_500, 8), 8, 64);
        let stream_a = Pattern::s_trav(Region::new("A", 100_000, 8));
        let stream_b = Pattern::s_trav(Region::new("B", 100_000, 8));
        let patterns = [head, twin, stream_a, stream_b];
        let candidates: Vec<Candidate<'_>> = patterns
            .iter()
            .map(|p| Candidate {
                pattern: p,
                cpu_ns: 0.0,
            })
            .collect();
        let d = next_batch(&model, &candidates, &cfg(4), &[]).unwrap();
        assert!(d.admitted.contains(&0));
        assert!(!d.admitted.contains(&1), "twin must be skipped");
        assert!(d.admitted.contains(&2) && d.admitted.contains(&3));
    }

    #[test]
    fn singleton_batch_prices_as_serial_execution() {
        // One candidate: the batch *is* serial execution, so the wall
        // equals the serial fallback and the speedup is exactly 1.
        let model = CostModel::new(presets::tiny_smp(4));
        let p = Pattern::s_trav(Region::new("Q", 10_000, 8));
        let candidates = [Candidate {
            pattern: &p,
            cpu_ns: 5_000.0,
        }];
        let d = next_batch(&model, &candidates, &cfg(4), &[]).unwrap();
        assert_eq!(d.admitted, vec![0]);
        assert!((d.predicted_wall_ns - d.predicted_serial_ns).abs() < 1e-9);
        assert!((d.predicted_speedup() - 1.0).abs() < 1e-9);
        // max_batch 1 degenerates to pure serial scheduling.
        let p2 = Pattern::s_trav(Region::new("R", 10_000, 8));
        let two = [
            Candidate {
                pattern: &p,
                cpu_ns: 0.0,
            },
            Candidate {
                pattern: &p2,
                cpu_ns: 0.0,
            },
        ];
        let d1 = next_batch(&model, &two, &cfg(1), &[]).unwrap();
        assert_eq!(d1.admitted, vec![0]);
    }
}
