//! Mapping multi-tenant query requests onto logical plans.
//!
//! [`gcm_workload::Workload::query_mix`] generates *shapes* — tenant,
//! class, quantized selectivity — without knowing any catalog. This
//! module binds a request to one tenant's registered tables, producing
//! the [`LogicalPlan`] the service optimizes and executes. Because the
//! selectivities are quantized, a 50-query mix maps onto a handful of
//! distinct plans, which is exactly the workload a plan cache serves
//! from warm entries.

use gcm_engine::plan::LogicalPlan;
use gcm_workload::{QueryRequest, TenantClass};

/// One tenant's slice of the service catalog.
#[derive(Debug, Clone, Copy)]
pub struct TenantTables {
    /// Catalog index of the tenant's fact table.
    pub fact: usize,
    /// Catalog index of the tenant's dimension table.
    pub dim: usize,
    /// Exclusive upper bound of the tenant's key domain (selectivities
    /// scale against it).
    pub key_bound: u64,
}

/// The `key < threshold` cut-off keeping `selectivity` of the domain
/// (at least 1, so a point lookup still selects something).
fn threshold(selectivity: f64, key_bound: u64) -> u64 {
    ((selectivity.clamp(0.0, 1.0) * key_bound as f64).round() as u64).max(1)
}

/// Bind one request to its tenant's tables.
///
/// * [`PointLookup`](TenantClass::PointLookup): a sliver-selective
///   probe of the dimension table.
/// * [`ScanHeavy`](TenantClass::ScanHeavy): a broad fact-table sweep
///   with a grouped count on top.
/// * [`JoinHeavy`](TenantClass::JoinHeavy): σ(fact) ⋈ dimension with a
///   grouped count — the shape whose build/aggregate footprints contend
///   for the shared cache level.
pub fn plan_for(req: &QueryRequest, t: &TenantTables) -> LogicalPlan {
    let cut = threshold(req.selectivity, t.key_bound);
    match req.class {
        TenantClass::PointLookup => LogicalPlan::scan(t.dim).select_lt(cut),
        TenantClass::ScanHeavy => LogicalPlan::scan(t.fact).select_lt(cut).group_count(),
        TenantClass::JoinHeavy => LogicalPlan::scan(t.fact)
            .select_lt(cut)
            .join(LogicalPlan::scan(t.dim))
            .group_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> TenantTables {
        TenantTables {
            fact: 0,
            dim: 1,
            key_bound: 1_000,
        }
    }

    #[test]
    fn classes_map_to_their_shapes() {
        let t = tables();
        let point = plan_for(
            &QueryRequest {
                tenant: 0,
                class: TenantClass::PointLookup,
                selectivity: 0.002,
            },
            &t,
        );
        assert_eq!(point.to_string(), "select_lt<2>(scan(1))");
        let scan = plan_for(
            &QueryRequest {
                tenant: 1,
                class: TenantClass::ScanHeavy,
                selectivity: 0.5,
            },
            &t,
        );
        assert_eq!(scan.to_string(), "group_count(select_lt<500>(scan(0)))");
        let join = plan_for(
            &QueryRequest {
                tenant: 2,
                class: TenantClass::JoinHeavy,
                selectivity: 0.25,
            },
            &t,
        );
        assert_eq!(join.joins(), 1);
        assert_eq!(join.max_table(), Some(1));
    }

    #[test]
    fn point_lookups_never_select_nothing() {
        let t = TenantTables {
            fact: 0,
            dim: 1,
            key_bound: 10,
        };
        let q = plan_for(
            &QueryRequest {
                tenant: 0,
                class: TenantClass::PointLookup,
                selectivity: 0.002,
            },
            &t,
        );
        assert_eq!(q.to_string(), "select_lt<1>(scan(1))");
    }

    #[test]
    fn equal_requests_fingerprint_equal() {
        // The plan-cache precondition: a repeated (tenant, class,
        // bucket) triple must map to the identical plan.
        let t = tables();
        let req = QueryRequest {
            tenant: 2,
            class: TenantClass::JoinHeavy,
            selectivity: 0.25,
        };
        assert_eq!(
            plan_for(&req, &t).fingerprint(),
            plan_for(&req, &t).fingerprint()
        );
    }
}
