//! Drift-triggered auto-recalibration: the service *acting* on the
//! drift flag instead of merely raising it.
//!
//! The loop the paper's workflow implies (§2.3: adapt the model by
//! re-instantiating its parameters) but leaves manual: when the
//! [`DriftMonitor`](gcm_obs::DriftMonitor) flags an operator class,
//! the service hands the stale class list to a [`Recalibrator`], which
//! runs calibration probes on a **background thread** (probes take
//! milliseconds to seconds — the serving path must not stall) and
//! returns a [`Recalibration`]. The service then atomically swaps the
//! refreshed parameters in: `per_op_ns` (and optionally the whole
//! hardware spec) replace the models' calibration, the statistics
//! catalog's epoch is force-bumped so every cached plan re-prices
//! under the new parameters, and the drift monitor resets to start
//! judging the *new* calibration.
//!
//! The probe is injectable (`Recalibrator::new` takes any closure) so
//! tests pin the control loop deterministically; production
//! constructors run the real host probes from `gcm-engine` /
//! `gcm-calibrate`.

use gcm_hardware::HardwareSpec;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The refreshed parameters one probe run produced.
#[derive(Debug, Clone)]
pub struct Recalibration {
    /// Re-measured CPU charge per logical operation (Eq 6.1 `T_cpu`).
    pub per_op_ns: f64,
    /// A re-calibrated hardware spec, when the probe re-ran the full
    /// hierarchy detection; `None` refreshes only the CPU side.
    pub spec: Option<HardwareSpec>,
}

/// The injectable probe: stale operator classes in, refreshed
/// calibration out. Must be callable from the background thread.
pub type ProbeFn = dyn Fn(&[String]) -> Recalibration + Send + Sync;

/// Runs calibration probes off the serving path and hands results back
/// for the service to apply. At most one probe run is in flight at a
/// time; re-triggers while one is running are coalesced into it.
pub struct Recalibrator {
    probe: Arc<ProbeFn>,
    inflight: Option<(Vec<String>, JoinHandle<Recalibration>)>,
    runs: u64,
}

impl std::fmt::Debug for Recalibrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recalibrator")
            .field("inflight", &self.inflight.is_some())
            .field("runs", &self.runs)
            .finish()
    }
}

impl Recalibrator {
    /// A recalibrator running `probe` on a background thread whenever
    /// triggered. The probe receives the stale operator classes that
    /// caused the trigger (informational — probes may log or scope by
    /// them).
    pub fn new(probe: impl Fn(&[String]) -> Recalibration + Send + Sync + 'static) -> Recalibrator {
        Recalibrator {
            probe: Arc::new(probe),
            inflight: None,
            runs: 0,
        }
    }

    /// The production CPU-side probe: re-measure `per_op_ns` with the
    /// in-cache scalar probe of
    /// [`gcm_engine::native::calibrate_per_op_ns`] (milliseconds).
    /// The hierarchy spec is left as-is — CPU drift is what the
    /// service-level monitor attributes per class.
    pub fn host_cpu() -> Recalibrator {
        Recalibrator::new(|_stale| Recalibration {
            per_op_ns: gcm_engine::native::calibrate_per_op_ns(),
            spec: None,
        })
    }

    /// The full production probe: re-run the hierarchy detection of
    /// [`gcm_calibrate::calibrate_host`] over working sets up to
    /// `max_bytes` (seconds of probing) *and* the CPU-side per-op
    /// probe, swapping in a freshly calibrated spec. Falls back to a
    /// CPU-only refresh if the detected hierarchy fails spec
    /// validation.
    pub fn host_full(max_bytes: u64) -> Recalibrator {
        Recalibrator::new(move |_stale| {
            let per_op_ns = gcm_engine::native::calibrate_per_op_ns();
            let spec = gcm_calibrate::calibrate_host(max_bytes)
                .to_spec("recalibrated host", 0.0)
                .ok();
            Recalibration { per_op_ns, spec }
        })
    }

    /// Completed probe runs whose results were collected.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// True while a probe thread is running.
    pub fn in_flight(&self) -> bool {
        self.inflight.is_some()
    }

    /// Start a background probe run for `stale` classes. Returns
    /// `true` if a run was started, `false` when one is already in
    /// flight (the trigger coalesces into it).
    pub fn trigger(&mut self, stale: &[String]) -> bool {
        if self.inflight.is_some() {
            return false;
        }
        let probe = Arc::clone(&self.probe);
        let classes = stale.to_vec();
        let thread_classes = classes.clone();
        let handle = std::thread::spawn(move || probe(&thread_classes));
        self.inflight = Some((classes, handle));
        true
    }

    /// Collect a finished probe run without blocking: `Some((stale
    /// classes, result))` when the background thread has completed,
    /// `None` when none is in flight or it is still probing.
    pub fn poll(&mut self) -> Option<(Vec<String>, Recalibration)> {
        if self.inflight.as_ref().is_some_and(|(_, h)| h.is_finished()) {
            return self.wait();
        }
        None
    }

    /// Collect the in-flight probe run, blocking until it finishes.
    /// `None` when none is in flight. A panicked probe thread is
    /// swallowed (the run is discarded; calibration stays unchanged).
    pub fn wait(&mut self) -> Option<(Vec<String>, Recalibration)> {
        let (classes, handle) = self.inflight.take()?;
        match handle.join() {
            Ok(r) => {
                self.runs += 1;
                Some((classes, r))
            }
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn trigger_poll_wait_lifecycle() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let mut r = Recalibrator::new(move |stale| {
            calls2.fetch_add(1, Ordering::SeqCst);
            assert_eq!(stale, ["sort"]);
            Recalibration {
                per_op_ns: 7.5,
                spec: None,
            }
        });
        assert!(!r.in_flight());
        assert!(r.poll().is_none());
        assert!(r.trigger(&["sort".into()]));
        // A second trigger coalesces into the running probe.
        assert!(!r.trigger(&["sort".into()]));
        let (classes, result) = r.wait().expect("probe completes");
        assert_eq!(classes, ["sort"]);
        assert_eq!(result.per_op_ns, 7.5);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(r.runs(), 1);
        assert!(!r.in_flight());
        // Drained: nothing more to collect until the next trigger.
        assert!(r.wait().is_none());
    }

    #[test]
    fn panicked_probe_discards_the_run() {
        let mut r = Recalibrator::new(|_| panic!("probe blew up"));
        assert!(r.trigger(&[]));
        assert!(r.wait().is_none());
        assert_eq!(r.runs(), 0);
        // The recalibrator survives and can run again.
        assert!(!r.in_flight());
    }

    #[test]
    fn host_cpu_probe_returns_a_sane_charge() {
        let mut r = Recalibrator::host_cpu();
        assert!(r.trigger(&[]));
        let (_, result) = r.wait().expect("host probe completes");
        assert!(
            result.per_op_ns > 0.0 && result.per_op_ns < 1000.0,
            "per_op_ns = {}",
            result.per_op_ns
        );
        assert!(result.spec.is_none());
    }
}
