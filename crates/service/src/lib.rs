//! # gcm-service — a cache-contention-aware query service
//!
//! The paper's `⊙` operator (§5.2, Eq 5.3) prices access patterns that
//! *coexist* in one cache hierarchy. PR 3 applied it to the threads of
//! a single query; this crate applies it **between queries**: a
//! concurrent service that accepts logical plans over registered
//! relations and lets the cost model itself decide how the machine is
//! shared. Three cooperating components:
//!
//! * a **plan cache** ([`cache::PlanCache`]) memoizing
//!   [`optimize_and_lower`] per (plan fingerprint, statistics epoch) —
//!   statistics drift past the [`StatsCatalog`] threshold bumps the
//!   epoch and forces re-optimization;
//! * a **⊙-priced admission controller** ([`admission`]) that greedily
//!   forms the next batch from the pending queue, admitting a query
//!   only while the `⊙`-composed batch wall time
//!   ([`gcm_core::CostModel::batch_cost`]) beats appending the query
//!   serially — the model decides the concurrency degree across
//!   queries exactly the way the optimizer decides DOP within one;
//! * an **executor pool** ([`executor`]) of [`std::thread::scope`]
//!   workers, each running one admitted query over its own simulated
//!   hierarchy view, reporting per-query latency and
//!   predicted-vs-measured error into [`ServiceMetrics`].
//!
//! ```
//! use gcm_engine::plan::LogicalPlan;
//! use gcm_hardware::presets;
//! use gcm_service::QueryService;
//! use gcm_workload::Workload;
//!
//! let mut svc = QueryService::new(presets::modern_smp(4));
//! let mut wl = Workload::new(7);
//! let star = wl.star_scenario(4_000, 512, 1);
//! let fact = svc.register_table("F", star.fact, 8);
//! let dim = svc.register_table("D", star.dims[0].clone(), 8);
//!
//! // Two scans and a join land in the queue...
//! for cut in [128, 256] {
//!     svc.submit(LogicalPlan::scan(fact).select_lt(cut).group_count())
//!         .unwrap();
//! }
//! svc.submit(
//!     LogicalPlan::scan(fact)
//!         .select_lt(256)
//!         .join(LogicalPlan::scan(dim))
//!         .group_count(),
//! )
//! .unwrap();
//!
//! // ...and the service batches and executes them.
//! svc.run().unwrap();
//! let m = svc.metrics();
//! assert_eq!(m.queries.len(), 3);
//! assert!(m.total_wall_ns() > 0.0);
//! ```

pub mod admission;
pub mod builds;
pub mod cache;
pub mod executor;
pub mod metrics;
pub mod mix;
pub mod recalibrate;

pub use admission::{AdmissionConfig, BatchDecision, SloPolicy};
pub use builds::{strip_build_phase, BuildRegistry, SharedBuild};
#[cfg(feature = "mutex-baseline")]
pub use cache::MutexPlanCache;
pub use cache::{PlanCache, PlanKey};
pub use executor::{execute_batch_native, ExecutedQuery, MemberBuilds, TableData};
pub use metrics::{BatchRecord, QueryRecord, ServiceMetrics, ShedRecord};
pub use mix::{plan_for, TenantTables};
pub use recalibrate::{Recalibration, Recalibrator};

use gcm_core::{CostModel, CpuCost, Pattern, Region};
use gcm_engine::ops::hash::build_ops;
use gcm_engine::plan::{
    catalog::DEFAULT_DRIFT_THRESHOLD, explain_analyze, optimize_and_lower,
    optimizer::DEFAULT_THREAD_SPAWN_NS, plan_classes, ExplainReport, LogicalPlan, PhysicalPlan,
    PlanError, PlannedQuery, StatsCatalog, TableStats,
};
use gcm_engine::planner::JoinAlgorithm;
use gcm_engine::{ExecContext, Relation};
use gcm_hardware::HardwareSpec;
use gcm_obs::pmu::PmuStatus;
use gcm_obs::{DriftMonitor, FlightRecorder, Span, SpanKind, SpanRecorder, SpanSink};
use gcm_workload::TenantClass;
use std::collections::VecDeque;
use std::sync::Arc;

/// Service knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Hard cap on batch size; 0 means "the machine's core count".
    pub max_batch: usize,
    /// CPU calibration: nanoseconds per logical operation (used both
    /// for predictions and for scoring measured runs, Eq 6.1).
    pub per_op_ns: f64,
    /// Per-worker dispatch charge, ns (see [`AdmissionConfig`]).
    pub dispatch_ns: f64,
    /// Statistics drift fraction beyond which cached plans go stale
    /// (see [`StatsCatalog`]).
    pub drift_threshold: f64,
    /// Per-class sojourn budgets turning admission into overload
    /// shedding ([`QueryService::next_batch_at`]); `None` (the
    /// default) never sheds.
    pub slo: Option<SloPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_batch: 0,
            per_op_ns: CpuCost::DEFAULT_PLANNER_PER_OP_NS,
            dispatch_ns: DEFAULT_THREAD_SPAWN_NS,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            slo: None,
        }
    }
}

/// One pending (optimized, not yet executed) query.
#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    plan: LogicalPlan,
    planned: Arc<PlannedQuery>,
    /// The pattern the admission controller prices: the planned pattern
    /// with every shared build phase stripped and the probe redirected
    /// at the build's canonical region ([`strip_build_phase`]); the
    /// planned pattern unchanged when nothing is shared.
    pattern: Arc<Pattern>,
    /// Predicted CPU time matching `pattern`: the planned `cpu_ns`
    /// minus the build share of every stripped build phase.
    cpu_ns: f64,
    /// The shared builds this query probes instead of building.
    builds: Vec<Arc<SharedBuild>>,
    /// The submitter's tenant class ([`QueryService::submit_classed`]):
    /// `None` for plain [`QueryService::submit`], which exempts the
    /// query from shedding and sorts it behind every classed one.
    class: Option<TenantClass>,
    /// When the query arrived, in the caller's clock (ns) — the sojourn
    /// the shed pass projects starts here.
    arrival_ns: u64,
    /// Predicted stand-alone time (planned memory + serving-path CPU),
    /// ns — the query's contribution to the backlog projection.
    solo_ns: f64,
    /// The shed gate already evaluated this query and kept it. A
    /// committed query is never re-judged — the shed/serve decision is
    /// made exactly once, at arrival cost, which is what makes shed
    /// responses *fast* (a late re-shed would cost the client the very
    /// sojourn the budget was supposed to cap).
    committed: bool,
}

/// An admitted batch, ready to execute. Produced by
/// [`QueryService::next_batch`], consumed by
/// [`QueryService::execute_batch`].
#[derive(Debug, Clone)]
pub struct Batch {
    entries: Vec<Pending>,
    /// Predicted wall time (⊙-composed slowest member + dispatch), ns.
    pub predicted_wall_ns: f64,
    /// Predicted serial fallback for the same members, ns.
    pub predicted_serial_ns: f64,
    per_query_ns: Vec<f64>,
}

impl Batch {
    /// Number of member queries.
    pub fn size(&self) -> usize {
        self.entries.len()
    }

    /// Member query ids, in batch order.
    pub fn ids(&self) -> Vec<u64> {
        self.entries.iter().map(|p| p.id).collect()
    }

    /// Member physical plans, in batch order.
    pub fn plans(&self) -> Vec<&PhysicalPlan> {
        self.entries.iter().map(|p| &p.planned.plan).collect()
    }

    /// Predicted batching speedup over serial execution (1.0 for a
    /// singleton).
    pub fn predicted_speedup(&self) -> f64 {
        if self.predicted_wall_ns > 0.0 {
            self.predicted_serial_ns / self.predicted_wall_ns
        } else {
            1.0
        }
    }
}

/// The query service: registered relations on one shared machine, a
/// plan cache, the ⊙-priced batch scheduler, and the executor pool.
/// See the [crate docs](crate) for the architecture.
#[derive(Debug)]
pub struct QueryService {
    spec: HardwareSpec,
    /// Prices batches: the shared machine with its `Sharing`
    /// attributes (the `⊙`-across-cores rule needs them).
    batch_model: CostModel,
    /// Prices and optimizes single plans: one core's full-capacity
    /// view. The service spends its concurrency budget *across*
    /// queries, so plans are optimized serial (one core per query).
    plan_model: CostModel,
    catalog: StatsCatalog,
    tables: Vec<Arc<TableData>>,
    cache: Arc<PlanCache>,
    builds: Arc<BuildRegistry>,
    queue: VecDeque<Pending>,
    cfg: ServiceConfig,
    next_id: u64,
    metrics: ServiceMetrics,
    /// The service trace: control-path spans (optimize / build-attach /
    /// admission) land on [`QueryService::ctl`]'s lane; each batch
    /// worker registers its own lane for per-operator execute spans
    /// ([`executor::execute_batch_observed`]).
    spans: SpanRecorder,
    /// The control path's own span lane (submit / next_batch run on the
    /// caller's thread — one writer, one lane).
    ctl: SpanSink,
    /// Per-operator-class measured/predicted drift
    /// ([`DriftMonitor::needs_recalibration`] asks for a re-calibrate).
    drift: DriftMonitor,
    /// Closes the drift loop when installed
    /// ([`QueryService::set_recalibrator`]): a raised flag triggers a
    /// background probe run whose result is swapped in atomically.
    recal: Option<Recalibrator>,
    /// Completed recalibrations applied to this service.
    recalibrations: u64,
    /// Post-hoc debugging ring: the last
    /// [`FLIGHT_CAPACITY`](QueryService::FLIGHT_CAPACITY) EXPLAIN
    /// ANALYZE reports ([`QueryService::explain_analyze`]).
    flight: FlightRecorder,
    /// EWMA of the admission controller's predicted batch speedup —
    /// the ⊙-informed drain rate the shed projection divides the
    /// backlog by.
    drain_speedup: f64,
    /// EWMA of measured-wall / predicted-wall from
    /// [`QueryService::execute_batch_native_observed`] (and the sim
    /// path): the bridge from model nanoseconds to the caller's clock
    /// in the shed projection. Seeded by the first observed batch.
    wall_scale: f64,
    wall_scale_seeded: bool,
}

impl QueryService {
    /// A service on the given machine with the default configuration.
    pub fn new(spec: HardwareSpec) -> QueryService {
        QueryService::with_config(spec, ServiceConfig::default())
    }

    /// A service with explicit knobs.
    pub fn with_config(spec: HardwareSpec, cfg: ServiceConfig) -> QueryService {
        let plan_model = CostModel::new(spec.thread_view(1));
        let batch_model = CostModel::new(spec.clone());
        let spans = SpanRecorder::new();
        let ctl = spans.sink();
        QueryService {
            spec,
            batch_model,
            plan_model,
            catalog: StatsCatalog::new(Vec::new()).with_drift_threshold(cfg.drift_threshold),
            tables: Vec::new(),
            cache: Arc::new(PlanCache::new()),
            builds: Arc::new(BuildRegistry::new()),
            queue: VecDeque::new(),
            cfg,
            next_id: 0,
            metrics: ServiceMetrics::default(),
            spans,
            ctl,
            drift: DriftMonitor::new(),
            recal: None,
            recalibrations: 0,
            flight: FlightRecorder::new(QueryService::FLIGHT_CAPACITY),
            drain_speedup: 1.0,
            wall_scale: 1.0,
            wall_scale_seeded: false,
        }
    }

    /// EXPLAIN ANALYZE reports kept in the [`flight`](QueryService::flight)
    /// ring before the oldest is evicted.
    pub const FLIGHT_CAPACITY: usize = 32;

    /// Record a control-path span (optimize / build-attach / admission)
    /// on the service's own lane. A no-op when tracing is off.
    fn ctl_span(&mut self, name: String, kind: SpanKind, start_ns: u64, end_ns: u64, ops: u64) {
        if !self.ctl.active() {
            return;
        }
        self.ctl.record(Span {
            name,
            kind,
            start_ns,
            end_ns,
            elapsed_ns: end_ns.saturating_sub(start_ns) as f64,
            accesses: 0,
            level_misses: Vec::new(),
            ops,
            lane: 0,
            seq: 0,
        });
    }

    /// Register a relation (a key column of `w`-byte tuples), deriving
    /// its [`TableStats`] from the data. Returns the catalog index
    /// submitted plans reference.
    pub fn register_table(&mut self, name: &str, keys: Vec<u64>, w: u64) -> usize {
        let stats = derive_stats(&keys, w);
        let idx = self.catalog.push(stats);
        self.tables.push(Arc::new(TableData {
            name: name.to_string(),
            keys,
            w,
        }));
        idx
    }

    /// Replace a registered relation's data, refreshing its statistics.
    /// Returns `true` when the stats drifted past the threshold and
    /// bumped the epoch (stale plan-cache entries are retired).
    pub fn update_table(&mut self, idx: usize, keys: Vec<u64>) -> bool {
        let w = self.tables[idx].w;
        let stats = derive_stats(&keys, w);
        self.tables[idx] = Arc::new(TableData {
            name: self.tables[idx].name.clone(),
            keys,
            w,
        });
        let bumped = self.catalog.update(idx, stats);
        if bumped {
            let epoch = self.catalog.epoch();
            self.cache.retire_epochs_before(epoch);
            self.builds.retire_epochs_before(epoch);
        }
        bumped
    }

    /// Submit a logical plan: optimize it (through the plan cache,
    /// against a consistent statistics snapshot) and append it to the
    /// pending queue, attaching the shared build side of every hash
    /// join over a base table ([`BuildRegistry`]). Returns the query id.
    pub fn submit(&mut self, plan: LogicalPlan) -> Result<u64, PlanError> {
        self.submit_inner(plan, None, 0)
    }

    /// Submit a logical plan on behalf of a tenant class, stamping its
    /// arrival time (in the caller's clock, ns). Classed submissions
    /// participate in SLO shedding and priority ordering when
    /// [`ServiceConfig::slo`] is set and the queue is drained through
    /// [`QueryService::next_batch_at`]; plain
    /// [`submit`](QueryService::submit)s never shed.
    pub fn submit_classed(
        &mut self,
        plan: LogicalPlan,
        class: TenantClass,
        arrival_ns: u64,
    ) -> Result<u64, PlanError> {
        self.submit_inner(plan, Some(class), arrival_ns)
    }

    fn submit_inner(
        &mut self,
        plan: LogicalPlan,
        class: Option<TenantClass>,
        arrival_ns: u64,
    ) -> Result<u64, PlanError> {
        let snap = self.catalog.snapshot();
        let key = (plan.fingerprint(), snap.epoch());
        let t0 = self.ctl.now_ns();
        let planned = self.cache.get_or_optimize(key, &plan, || {
            optimize_and_lower(&self.plan_model, &plan, snap.tables())
        })?;
        let t1 = self.ctl.now_ns();
        let (pattern, cpu_ns, builds) = self.attach_shared_builds(&planned, snap.epoch());
        let t2 = self.ctl.now_ns();
        let id = self.next_id;
        self.next_id += 1;
        self.ctl_span(format!("optimize q{id}"), SpanKind::Optimize, t0, t1, 0);
        self.ctl_span(
            format!("attach-builds q{id}"),
            SpanKind::Build,
            t1,
            t2,
            builds.len() as u64,
        );
        let solo_ns = planned.mem_ns + cpu_ns;
        self.queue.push_back(Pending {
            id,
            plan,
            planned,
            pattern,
            cpu_ns,
            builds,
            class,
            arrival_ns,
            solo_ns,
            committed: false,
        });
        let depth = self.queue.len() as f64;
        self.metrics.registry.set_gauge(metrics::QUEUE_DEPTH, depth);
        self.metrics
            .registry
            .gauge_max(metrics::QUEUE_DEPTH_PEAK, depth);
        Ok(id)
    }

    /// Register (or reuse) a shared build for every hash join in the
    /// planned query whose build side is a base-table scan, returning
    /// the query's serving-path pattern, its matching CPU prediction,
    /// and the builds to hand the executor. The *first* query to request
    /// a (table, epoch) build registers the layout but keeps its charged
    /// build phase — somebody has to pay for the build, and it is the
    /// builder. Every later query at the same key reuses: its build
    /// phase is stripped, its probe redirected at the canonical shared
    /// region, and the planner's build share subtracted from its CPU
    /// prediction (via [`build_ops`] — the same term the planner
    /// charged). A rewrite that does not match keeps the planned pattern
    /// for that join, so prediction and execution never disagree.
    fn attach_shared_builds(
        &self,
        planned: &PlannedQuery,
        epoch: u64,
    ) -> (Arc<Pattern>, f64, Vec<Arc<SharedBuild>>) {
        let mut pattern = planned.pattern.clone();
        let mut cpu_ns = planned.cpu_ns;
        let mut builds: Vec<Arc<SharedBuild>> = Vec::new();
        for t in hash_build_tables(&planned.plan) {
            let Some(data) = self.tables.get(t) else {
                continue;
            };
            let (b, computed) = self.builds.get_or_build(t, epoch, &data.keys);
            if computed {
                continue;
            }
            if let Some(stripped) = strip_build_phase(&pattern, &format!("T{t}"), &b.region) {
                pattern = stripped;
                cpu_ns -= CpuCost::default_planner().ns(build_ops(data.keys.len() as u64));
                builds.push(b);
            }
        }
        (Arc::new(pattern), cpu_ns.max(0.0), builds)
    }

    /// Number of queries waiting for admission.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Ask the admission controller for the next batch, removing the
    /// admitted queries from the queue. `None` when the queue is empty.
    /// The decision is pure pricing — callers may inspect the batch
    /// (sizes, predicted times) without executing it.
    pub fn next_batch(&mut self) -> Option<Batch> {
        let order: Vec<usize> = (0..self.queue.len()).collect();
        self.form_batch(&order)
    }

    /// The SLO-aware scheduling step: run the shed pass at `now_ns`
    /// (the caller's clock, same units as the `arrival_ns` handed to
    /// [`submit_classed`](QueryService::submit_classed)), then form the
    /// next batch from the surviving queue in class-priority order.
    /// Returns the queries shed this turn — the caller owes each a
    /// fail-fast response — and the batch (`None` when the queue is
    /// empty).
    ///
    /// The shed predicate is a ⊙ sojourn projection. Walking the queue
    /// in ([`TenantClass::priority`], arrival) order and keeping a
    /// running sum of predicted stand-alone work `cum`, a query `q` is
    /// shed iff
    ///
    /// ```text
    /// waited(q) + scale · (cum + solo(q)) / speedup  >  budget(class(q))
    /// ```
    ///
    /// where `speedup` is the EWMA of the admission controller's
    /// ⊙-priced batch speedup (how much faster than serial the service
    /// drains when the model lets queries coexist) and `scale` the
    /// EWMA of measured-wall / predicted-wall (model nanoseconds →
    /// caller-clock nanoseconds). Unclassed queries never shed but
    /// their work still counts toward the backlog.
    ///
    /// The decision is made **once**, at the query's first pass: shed
    /// now (the fail-fast reply costs one projection, no execution) or
    /// commit to serving it even if the projection later sours. Without
    /// commitment the steady-state backlog hovers exactly at the
    /// budget, every borderline query is kept and re-judged until its
    /// deadline passes, and "shed" responses arrive as late as served
    /// ones — the opposite of fail-fast.
    ///
    /// Without an [`SloPolicy`] installed this degenerates to
    /// [`next_batch`](QueryService::next_batch) in arrival order and
    /// sheds nothing.
    pub fn next_batch_at(&mut self, now_ns: u64) -> (Vec<ShedRecord>, Option<Batch>) {
        if self.cfg.slo.is_none() {
            return (Vec::new(), self.next_batch());
        }
        let shed = self.shed_pass(now_ns);
        let order = self.priority_order();
        let batch = self.form_batch(&order);
        (shed, batch)
    }

    /// Queue indices in ([`TenantClass::priority`], arrival) order;
    /// unclassed queries sort behind every classed one.
    fn priority_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| self.queue[i].class.map_or(u8::MAX, TenantClass::priority));
        order
    }

    /// Shed every classed query whose projected sojourn overruns its
    /// class budget (see [`next_batch_at`](QueryService::next_batch_at)
    /// for the predicate), removing it from the queue and recording it
    /// into [`ServiceMetrics`].
    fn shed_pass(&mut self, now_ns: u64) -> Vec<ShedRecord> {
        let Some(slo) = self.cfg.slo else {
            return Vec::new();
        };
        let speedup = self.drain_speedup.max(1.0);
        let scale = self.wall_scale;
        let mut cum = 0.0f64;
        let mut doomed: Vec<usize> = Vec::new();
        let mut records: Vec<ShedRecord> = Vec::new();
        for i in self.priority_order() {
            let p = &self.queue[i];
            let Some(class) = p.class else {
                cum += p.solo_ns;
                continue;
            };
            // Already judged and kept: it counts toward the backlog
            // but is never shed (see the method docs — re-judging is
            // what makes sheds slow).
            if p.committed {
                cum += p.solo_ns;
                continue;
            }
            let waited = now_ns.saturating_sub(p.arrival_ns) as f64;
            let projected = waited + scale * (cum + p.solo_ns) / speedup;
            let budget = slo.budget_ns(class);
            if projected > budget {
                doomed.push(i);
                records.push(ShedRecord {
                    id: p.id,
                    class,
                    waited_ns: waited as u64,
                    projected_ns: projected,
                    budget_ns: budget,
                });
            } else {
                cum += p.solo_ns;
                self.queue[i].committed = true;
            }
        }
        doomed.sort_unstable_by(|a, b| b.cmp(a));
        for i in doomed {
            self.queue.remove(i);
        }
        for r in &records {
            self.metrics.record_shed(r.clone());
        }
        self.metrics
            .registry
            .set_gauge(metrics::QUEUE_DEPTH, self.queue.len() as f64);
        records
    }

    /// Form a batch from the queue considered in `order` (indices into
    /// the queue), removing the admitted queries.
    fn form_batch(&mut self, order: &[usize]) -> Option<Batch> {
        let t0 = self.ctl.now_ns();
        let candidates: Vec<admission::Candidate<'_>> = order
            .iter()
            .map(|&i| {
                let p = &self.queue[i];
                admission::Candidate {
                    pattern: &p.pattern,
                    cpu_ns: p.cpu_ns,
                }
            })
            .collect();
        let shared = shared_regions(self.queue.iter());
        let cfg = AdmissionConfig {
            max_batch: if self.cfg.max_batch == 0 {
                self.spec.cores() as usize
            } else {
                self.cfg.max_batch
            },
            dispatch_ns: self.cfg.dispatch_ns,
        };
        let decision = admission::next_batch(&self.batch_model, &candidates, &cfg, &shared)?;
        // `admitted` indexes into `order`; map back to queue indices,
        // remove back to front so earlier indices stay valid, then
        // restore admission order.
        let chosen: Vec<usize> = decision.admitted.iter().map(|&k| order[k]).collect();
        let mut by_desc = chosen.clone();
        by_desc.sort_unstable_by(|a, b| b.cmp(a));
        let mut removed: Vec<(usize, Pending)> = by_desc
            .into_iter()
            .map(|i| (i, self.queue.remove(i).expect("admitted index in queue")))
            .collect();
        let entries: Vec<Pending> = chosen
            .iter()
            .map(|i| {
                let pos = removed
                    .iter()
                    .position(|(j, _)| j == i)
                    .expect("admitted exactly once");
                removed.swap_remove(pos).1
            })
            .collect();
        // Fold the decision's ⊙ speedup into the drain-rate EWMA the
        // shed projection divides by.
        self.drain_speedup = 0.7 * self.drain_speedup + 0.3 * decision.predicted_speedup();
        self.metrics
            .registry
            .set_gauge(metrics::QUEUE_DEPTH, self.queue.len() as f64);
        let t1 = self.ctl.now_ns();
        self.ctl_span(
            format!("admission[{}]", entries.len()),
            SpanKind::Admission,
            t0,
            t1,
            entries.len() as u64,
        );
        Some(Batch {
            entries,
            predicted_wall_ns: decision.predicted_wall_ns,
            predicted_serial_ns: decision.predicted_serial_ns,
            per_query_ns: decision.per_query_ns,
        })
    }

    /// Execute an admitted batch on the worker pool and record its
    /// metrics. Returns the index of the new
    /// [`BatchRecord`](ServiceMetrics::batches).
    pub fn execute_batch(&mut self, batch: Batch) -> Result<usize, PlanError> {
        let patterns: Vec<&Pattern> = batch.entries.iter().map(|p| p.pattern.as_ref()).collect();
        let members: Vec<MemberBuilds> = batch
            .entries
            .iter()
            .map(|p| MemberBuilds::new(p.builds.clone()))
            .collect();
        let shared = shared_regions(batch.entries.iter());
        let runs = executor::execute_batch_observed(
            &self.spec,
            &self.tables,
            &batch.plans(),
            &patterns,
            self.cfg.per_op_ns,
            &members,
            &shared,
            Some(&self.spans),
        )?;
        let batch_idx = self.metrics.batches.len();
        // The simulator cannot measure dispatch (it is host-side thread
        // bring-up, not simulated memory traffic), so the batch wall
        // carries the same per-worker constant the admission predicate
        // charged — both sides account dispatch identically and the
        // accuracy ratio reflects model quality, not bookkeeping.
        let measured_wall_ns = runs.iter().map(|r| r.measured_ns).fold(0.0, f64::max)
            + self.cfg.dispatch_ns * batch.size() as f64;
        for ((pending, run), predicted_ns) in
            batch.entries.iter().zip(&runs).zip(&batch.per_query_ns)
        {
            // Service-level drift: the whole-query measured/predicted
            // ratio, attributed to every operator class the plan
            // contains (once per class). Coarser than the per-node
            // attribution of `explain_analyze` — here a stale class
            // shows up on every plan shape that uses it, which is the
            // signal the recalibration flag needs.
            let mut classes = plan_classes(&pending.planned.plan);
            classes.sort_unstable();
            classes.dedup();
            for class in classes {
                self.drift.observe(class, run.measured_ns, *predicted_ns);
            }
            self.metrics.record_query(QueryRecord {
                id: pending.id,
                plan: pending.plan.to_string(),
                batch: batch_idx,
                predicted_ns: *predicted_ns,
                measured_ns: run.measured_ns,
                output_n: run.output_n,
                output_hash: run.output_hash,
            });
        }
        self.metrics.record_batch(BatchRecord {
            ids: batch.ids(),
            predicted_wall_ns: batch.predicted_wall_ns,
            predicted_serial_ns: batch.predicted_serial_ns,
            measured_wall_ns,
        });
        self.observe_wall_scale(measured_wall_ns, batch.predicted_wall_ns);
        // Close the drift loop without stalling the serving path: a
        // raised flag starts a background probe, and any probe that
        // finished since the last batch is applied now.
        self.pump_recalibration(false);
        self.sync_cache_counters();
        Ok(batch_idx)
    }

    /// Execute an admitted batch on the **host's real memory** instead
    /// of the simulated pool ([`executor::execute_batch_native`]):
    /// identical results, wall-clock latencies. Native runs are returned
    /// rather than folded into [`ServiceMetrics`] — the metrics compare
    /// the model against the *simulator*, whose charged clock shares the
    /// model's units; wall-clock comparisons belong to the
    /// calibrate-then-validate workflow with its own documented bounds.
    /// The batch's queries are consumed like
    /// [`execute_batch`](QueryService::execute_batch) would.
    pub fn execute_batch_native(&mut self, batch: Batch) -> Result<Vec<ExecutedQuery>, PlanError> {
        executor::execute_batch_native(&self.tables, &batch.plans())
    }

    /// [`execute_batch_native`](QueryService::execute_batch_native),
    /// plus the serving-path bookkeeping the network front end needs:
    /// the batch's wall clock is measured and folded into the
    /// model-ns → wall-ns EWMA the shed projection uses
    /// ([`next_batch_at`](QueryService::next_batch_at)), per-class
    /// native latency histograms and batch counters land in the
    /// registry, and each run comes back paired with its query id for
    /// response routing.
    pub fn execute_batch_native_observed(
        &mut self,
        batch: Batch,
    ) -> Result<Vec<(u64, ExecutedQuery)>, PlanError> {
        let t0 = std::time::Instant::now();
        let runs = executor::execute_batch_native(&self.tables, &batch.plans())?;
        let wall_ns = t0.elapsed().as_nanos() as f64;
        self.observe_wall_scale(wall_ns, batch.predicted_wall_ns);
        let r = &self.metrics.registry;
        r.inc("gcm_service_native_batches_total", 1);
        r.observe_ns("gcm_service_native_batch_wall_ns", wall_ns);
        for (p, run) in batch.entries.iter().zip(&runs) {
            if let Some(class) = p.class {
                r.observe_ns(
                    &gcm_obs::registry::labeled(
                        "gcm_service_native_query_ns",
                        &[("class", class.label())],
                    ),
                    run.measured_ns,
                );
            }
        }
        Ok(batch.entries.iter().map(|p| p.id).zip(runs).collect())
    }

    /// Fold one measured/predicted batch-wall ratio into the
    /// [`wall_scale`](QueryService::wall_scale) EWMA (seeded by the
    /// first observation, clamped to keep one outlier batch from
    /// poisoning the projection).
    fn observe_wall_scale(&mut self, measured_wall_ns: f64, predicted_wall_ns: f64) {
        let ratio = measured_wall_ns / predicted_wall_ns.max(1.0);
        self.wall_scale = if self.wall_scale_seeded {
            0.8 * self.wall_scale + 0.2 * ratio
        } else {
            ratio
        };
        self.wall_scale_seeded = true;
        self.wall_scale = self.wall_scale.clamp(1e-4, 1e4);
    }

    /// The current model-ns → caller-clock EWMA the shed projection
    /// multiplies predicted work by (1.0 until a batch has been
    /// observed).
    pub fn wall_scale(&self) -> f64 {
        self.wall_scale
    }

    /// Replace the SLO policy, returning the previous one. A server
    /// front end uses this to run its warmup traffic unshedded (the
    /// wall-scale EWMA is unseeded until the first measured batch, so
    /// projections would be nonsense) and to A/B the shed gate.
    pub fn set_slo(&mut self, slo: Option<SloPolicy>) -> Option<SloPolicy> {
        std::mem::replace(&mut self.cfg.slo, slo)
    }

    /// Drain the queue: form and execute batches until nothing is
    /// pending.
    pub fn run(&mut self) -> Result<(), PlanError> {
        while let Some(batch) = self.next_batch() {
            self.execute_batch(batch)?;
        }
        self.sync_cache_counters();
        Ok(())
    }

    /// The accumulated report.
    pub fn metrics(&mut self) -> &ServiceMetrics {
        self.sync_cache_counters();
        &self.metrics
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The shared build-side registry.
    pub fn builds(&self) -> &Arc<BuildRegistry> {
        &self.builds
    }

    /// The statistics catalog (epoch, per-table stats).
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// The machine the service runs on.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// The span trace: drain with
    /// [`SpanRecorder::drain`](gcm_obs::SpanRecorder::drain), toggle
    /// with [`set_tracing`](QueryService::set_tracing).
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Turn span recording on or off at runtime (on by default; off
    /// costs one relaxed atomic load per would-be span).
    pub fn set_tracing(&self, on: bool) {
        self.spans.set_enabled(on);
    }

    /// The per-operator-class model-drift monitor. When
    /// [`needs_recalibration`](DriftMonitor::needs_recalibration)
    /// reports `true` and a [`Recalibrator`] is installed, the service
    /// re-probes and swaps the refreshed calibration in on its own;
    /// without one, re-run the calibrate workflow manually and rebuild
    /// the service with the refreshed `per_op_ns` / hardware spec.
    pub fn drift(&self) -> &DriftMonitor {
        &self.drift
    }

    /// The EXPLAIN ANALYZE flight recorder: the last
    /// [`FLIGHT_CAPACITY`](QueryService::FLIGHT_CAPACITY) reports, as
    /// dumpable JSON lines — what the service was thinking when a
    /// regression landed, without re-running anything.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// EXPLAIN ANALYZE `plan` against the service's registered tables
    /// on **host memory**, with PMU counters attached when the host
    /// allows them — per-node predicted-vs-measured miss rows, the
    /// ground truth the simulator's charged counters approximate (see
    /// [`NativeBackend::attach_pmu`](gcm_engine::native::NativeBackend::attach_pmu)).
    /// The report is recorded into the [`flight`](QueryService::flight)
    /// ring and returned alongside the PMU status the run observed
    /// (`Unavailable` means the rows are honestly absent, never zero).
    ///
    /// This is a diagnostic run outside the serving path: it executes
    /// the plan once on the caller's thread, unbatched and without
    /// shared builds, priced with the calibration currently in force.
    pub fn explain_analyze(
        &mut self,
        plan: &LogicalPlan,
    ) -> Result<(ExplainReport, PmuStatus), PlanError> {
        let snap = self.catalog.snapshot();
        let planned = optimize_and_lower(&self.plan_model, plan, snap.tables())?;
        let mut ctx = ExecContext::native();
        let pmu = ctx.mem.attach_pmu();
        let referenced = planned.plan.tables();
        let rels: Vec<Relation> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if referenced.contains(&i) {
                    ctx.relation_from_keys(&t.name, &t.keys, t.w)
                } else {
                    ctx.relation(&t.name, 0, t.w)
                }
            })
            .collect();
        let cpu = CpuCost::per_op(self.cfg.per_op_ns);
        let (_run, report) = explain_analyze(
            &mut ctx,
            &planned.plan,
            &rels,
            &self.plan_model,
            &cpu,
            self.cfg.per_op_ns,
        )?;
        self.flight
            .record(&format!("fp{:016x}", plan.fingerprint()), &report.to_json());
        Ok((report, pmu))
    }

    /// Install the auto-recalibration loop: from now on a raised drift
    /// flag triggers `recal`'s probe on a background thread, and each
    /// completed probe atomically updates the CPU calibration (and the
    /// spec, when the probe refreshes it), force-bumps the statistics
    /// epoch so every cached plan re-prices, and resets the drift
    /// monitor.
    pub fn set_recalibrator(&mut self, recal: Recalibrator) {
        self.recal = Some(recal);
    }

    /// Completed recalibrations applied to this service.
    pub fn recalibrations(&self) -> u64 {
        self.recalibrations
    }

    /// The CPU calibration currently in force (the `CpuCost::per_op`
    /// parameter measured runs are scored with). Changes when a
    /// recalibration lands.
    pub fn cpu_per_op_ns(&self) -> f64 {
        self.cfg.per_op_ns
    }

    /// Synchronously drive the recalibration loop: trigger a probe if
    /// the drift flag is raised (or collect the one already running),
    /// block until it finishes, and apply it. Returns `true` when a
    /// recalibration was applied. The asynchronous path is automatic —
    /// [`execute_batch`](QueryService::execute_batch) pumps the loop
    /// without blocking; this entry point is for tests and shutdown
    /// paths that must observe the swap.
    pub fn recalibrate_now(&mut self) -> bool {
        self.pump_recalibration(true)
    }

    /// One turn of the recalibration loop. `block` waits for the probe
    /// thread; otherwise only a finished probe is collected. Returns
    /// `true` when a result was applied.
    fn pump_recalibration(&mut self, block: bool) -> bool {
        let stale = self.drift.stale_classes();
        let Some(recal) = self.recal.as_mut() else {
            return false;
        };
        if !stale.is_empty() {
            recal.trigger(&stale);
        }
        let done = if block { recal.wait() } else { recal.poll() };
        match done {
            Some((_, result)) => {
                self.apply_recalibration(result);
                true
            }
            None => false,
        }
    }

    /// Atomically swap a probe result into the serving path: replace
    /// the CPU calibration (and models/spec when the probe refreshed
    /// the hierarchy), force-bump the statistics epoch so every cached
    /// plan and shared build re-prices under the new parameters, and
    /// reset the drift monitor to judge the new calibration from
    /// scratch.
    fn apply_recalibration(&mut self, r: Recalibration) {
        self.cfg.per_op_ns = r.per_op_ns;
        if let Some(spec) = r.spec {
            self.plan_model = CostModel::new(spec.thread_view(1));
            self.batch_model = CostModel::new(spec.clone());
            self.spec = spec;
        }
        let epoch = self.catalog.force_epoch_bump();
        self.cache.retire_epochs_before(epoch);
        self.builds.retire_epochs_before(epoch);
        self.drift.reset();
        self.recalibrations += 1;
    }

    fn sync_cache_counters(&mut self) {
        self.metrics.cache_hits = self.cache.hits();
        self.metrics.cache_misses = self.cache.misses();
        self.metrics.optimizer_runs = self.cache.optimizer_runs();
        self.metrics.cache_retired = self.cache.retired();
        self.metrics.builds_built = self.builds.built();
        self.metrics.builds_reused = self.builds.reused();
        let r = &self.metrics.registry;
        r.set_counter("gcm_service_cache_hits_total", self.metrics.cache_hits);
        r.set_counter("gcm_service_cache_misses_total", self.metrics.cache_misses);
        r.set_counter(
            "gcm_service_optimizer_runs_total",
            self.metrics.optimizer_runs,
        );
        r.set_counter(
            "gcm_service_cache_retired_total",
            self.metrics.cache_retired,
        );
        r.set_counter("gcm_service_builds_built_total", self.metrics.builds_built);
        r.set_counter(
            "gcm_service_builds_reused_total",
            self.metrics.builds_reused,
        );
        r.set_counter("gcm_service_spans_dropped_total", self.spans.dropped());
        r.set_counter("gcm_service_recalibrations_total", self.recalibrations);
        r.set_gauge("gcm_service_cpu_per_op_ns", self.cfg.per_op_ns);
        let depth = self.queue.len() as f64;
        r.set_gauge(metrics::QUEUE_DEPTH, depth);
        r.gauge_max(metrics::QUEUE_DEPTH_PEAK, depth);
        // Per-class drift ratios + stale count + flag, as gauges.
        self.drift.export_gauges(r, "gcm_service_drift");
    }
}

/// Catalog indices of every hash join in the plan whose build (inner)
/// side is a base-table scan — the joins a [`SharedBuild`] can serve.
/// One entry per join occurrence, in plan order.
fn hash_build_tables(plan: &PhysicalPlan) -> Vec<usize> {
    fn base_scan(p: &PhysicalPlan) -> Option<usize> {
        match p {
            PhysicalPlan::Scan { table } => Some(*table),
            PhysicalPlan::Parallel { input, .. } => base_scan(input),
            _ => None,
        }
    }
    fn walk(p: &PhysicalPlan, out: &mut Vec<usize>) {
        match p {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::Select { input, .. }
            | PhysicalPlan::Aggregate { input }
            | PhysicalPlan::Sort { input }
            | PhysicalPlan::Dedup { input }
            | PhysicalPlan::Partition { input, .. }
            | PhysicalPlan::Parallel { input, .. } => walk(input, out),
            PhysicalPlan::Join {
                left,
                right,
                algorithm,
            } => {
                walk(left, out);
                walk(right, out);
                if *algorithm == JoinAlgorithm::Hash {
                    if let Some(t) = base_scan(right) {
                        out.push(t);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// The canonical regions of every shared build attached to `entries`,
/// each exactly once — the `shared` list for Eq 5.3-with-shared-data
/// pricing and for the executor's member views.
fn shared_regions<'a>(entries: impl Iterator<Item = &'a Pending>) -> Vec<Region> {
    let mut out: Vec<Region> = Vec::new();
    for p in entries {
        for b in &p.builds {
            if !out.iter().any(|r| r.id() == b.region.id()) {
                out.push(b.region.clone());
            }
        }
    }
    out
}

/// Derive a relation's [`TableStats`] from its actual key column — the
/// service's statistics collector (exact, since the data is at hand).
pub fn derive_stats(keys: &[u64], w: u64) -> TableStats {
    let n = keys.len() as u64;
    let key_bound = keys.iter().copied().max().map_or(1, |m| m + 1);
    let distinct = {
        let mut seen = std::collections::HashSet::with_capacity(keys.len());
        keys.iter().filter(|k| seen.insert(**k)).count() as f64
    };
    let sorted = keys.windows(2).all(|p| p[0] <= p[1]);
    TableStats {
        n,
        w,
        key_bound,
        distinct,
        sorted,
        region: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;
    use gcm_workload::Workload;
    use std::sync::Mutex;

    fn service() -> QueryService {
        let mut svc = QueryService::new(presets::tiny_smp(4));
        let mut wl = Workload::new(42);
        let star = wl.star_scenario(3_000, 500, 1);
        svc.register_table("F", star.fact, 8);
        svc.register_table("D", star.dims[0].clone(), 8);
        svc
    }

    #[test]
    fn derive_stats_reads_the_data() {
        let s = derive_stats(&[3, 1, 4, 1, 5], 8);
        assert_eq!(s.n, 5);
        assert_eq!(s.key_bound, 6);
        assert_eq!(s.distinct, 4.0);
        assert!(!s.sorted);
        let sorted = derive_stats(&[1, 2, 3], 16);
        assert!(sorted.sorted);
        assert_eq!(sorted.w, 16);
        let empty = derive_stats(&[], 8);
        assert_eq!(empty.key_bound, 1);
    }

    #[test]
    fn submit_caches_repeated_plans() {
        let mut svc = service();
        let plan = LogicalPlan::scan(0).select_lt(100).group_count();
        for _ in 0..5 {
            svc.submit(plan.clone()).unwrap();
        }
        assert_eq!(svc.queue_len(), 5);
        assert_eq!(svc.cache().optimizer_runs(), 1);
        assert_eq!(svc.cache().hits(), 4);
    }

    #[test]
    fn run_drains_the_queue_and_records_metrics() {
        let mut svc = service();
        for cut in [100, 200, 100, 200] {
            svc.submit(LogicalPlan::scan(0).select_lt(cut).group_count())
                .unwrap();
        }
        svc.run().unwrap();
        assert_eq!(svc.queue_len(), 0);
        let m = svc.metrics();
        assert_eq!(m.queries.len(), 4);
        assert!(!m.batches.is_empty());
        assert!((m.hit_rate() - 0.5).abs() < 1e-9);
        // Ids cover every submission exactly once.
        let mut ids: Vec<u64> = m.queries.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Measured latencies are real.
        assert!(m.queries.iter().all(|q| q.measured_ns > 0.0));
    }

    #[test]
    fn scan_mix_batches_above_one() {
        let mut svc = service();
        // Four identical broad scans: streaming footprints must batch.
        for _ in 0..4 {
            svc.submit(LogicalPlan::scan(0).select_lt(400).group_count())
                .unwrap();
        }
        let batch = svc.next_batch().unwrap();
        assert!(batch.size() > 1, "scan batch size {}", batch.size());
        assert!(batch.predicted_speedup() > 1.0);
        svc.execute_batch(batch).unwrap();
        assert!(svc.metrics().max_batch_size() > 1);
    }

    #[test]
    fn stats_drift_retires_cached_plans() {
        let mut svc = service();
        let plan = LogicalPlan::scan(0).select_lt(100).group_count();
        svc.submit(plan.clone()).unwrap();
        assert_eq!(svc.cache().optimizer_runs(), 1);
        // Small drift: same epoch, cache still hot.
        let mut wl = Workload::new(43);
        let same = wl.star_scenario(3_100, 500, 1);
        assert!(!svc.update_table(0, same.fact));
        svc.submit(plan.clone()).unwrap();
        assert_eq!(svc.cache().optimizer_runs(), 1);
        // Past-threshold drift: epoch bumps, next submit re-optimizes.
        let big = wl.star_scenario(9_000, 500, 1);
        assert!(svc.update_table(0, big.fact));
        assert_eq!(svc.catalog().epoch(), 1);
        svc.submit(plan).unwrap();
        assert_eq!(svc.cache().optimizer_runs(), 2);
        svc.run().unwrap();
    }

    #[test]
    fn unknown_table_submission_errors() {
        let mut svc = service();
        let err = svc.submit(LogicalPlan::scan(5)).unwrap_err();
        assert!(matches!(err, PlanError::UnknownTable { table: 5, .. }));
        assert_eq!(svc.queue_len(), 0);
    }

    #[test]
    fn spans_cover_the_whole_query_lifecycle() {
        let mut svc = service();
        for cut in [100, 200] {
            svc.submit(
                LogicalPlan::scan(0)
                    .select_lt(cut)
                    .join(LogicalPlan::scan(1))
                    .group_count(),
            )
            .unwrap();
        }
        svc.run().unwrap();
        let spans = svc.spans().drain();
        let kind_count = |k: gcm_obs::SpanKind| spans.iter().filter(|s| s.kind == k).count();
        assert_eq!(kind_count(gcm_obs::SpanKind::Optimize), 2);
        assert_eq!(kind_count(gcm_obs::SpanKind::Build), 2);
        assert!(kind_count(gcm_obs::SpanKind::Admission) >= 1);
        // Per-operator execute spans: each query ran select + join +
        // aggregate at least.
        assert!(kind_count(gcm_obs::SpanKind::Execute) >= 6, "{spans:#?}");
        // Execute spans carry the sim backend's per-level miss deltas.
        assert!(spans
            .iter()
            .filter(|s| s.kind == gcm_obs::SpanKind::Execute)
            .all(|s| !s.level_misses.is_empty()));
        assert_eq!(svc.spans().dropped(), 0);
    }

    #[test]
    fn tracing_off_is_byte_identical_and_spanless() {
        let run_with = |tracing: bool| -> (Vec<(u64, u64)>, usize) {
            let mut svc = service();
            svc.set_tracing(tracing);
            for cut in [50, 150] {
                svc.submit(
                    LogicalPlan::scan(0)
                        .select_lt(cut)
                        .join(LogicalPlan::scan(1))
                        .group_count(),
                )
                .unwrap();
            }
            svc.run().unwrap();
            let mut out: Vec<(u64, u64)> = svc
                .metrics()
                .queries
                .iter()
                .map(|q| (q.output_n, q.output_hash))
                .collect();
            out.sort_unstable();
            let n_spans = svc.spans().drain().len();
            (out, n_spans)
        };
        let (on, spans_on) = run_with(true);
        let (off, spans_off) = run_with(false);
        assert_eq!(on, off, "tracing must not change results");
        assert_eq!(spans_off, 0);
        assert!(spans_on > 0);
    }

    #[test]
    fn drift_monitor_flags_a_miscalibrated_cpu_charge() {
        // Same queue twice: once with the calibration the planner
        // predicts with, once with the measured CPU charge lowballed
        // 4× under it — the monitor must stay quiet on the honest run
        // and raise the flag on the skewed one.
        let run_with = |per_op_ns: f64| -> (bool, Vec<String>) {
            let mut svc = QueryService::with_config(
                presets::tiny_smp(4),
                ServiceConfig {
                    max_batch: 1, // predicted == serial per-query price
                    per_op_ns,
                    ..ServiceConfig::default()
                },
            );
            let mut wl = Workload::new(45);
            let star = wl.star_scenario(3_000, 500, 1);
            svc.register_table("F", star.fact, 8);
            svc.register_table("D", star.dims[0].clone(), 8);
            for i in 0..10 {
                svc.submit(LogicalPlan::scan(0).select_lt(100 + 10 * i).group_count())
                    .unwrap();
            }
            svc.run().unwrap();
            (
                svc.drift().needs_recalibration(),
                svc.drift().stale_classes(),
            )
        };
        let honest = CpuCost::DEFAULT_PLANNER_PER_OP_NS;
        let (flag_honest, stale_honest) = run_with(honest);
        assert!(!flag_honest, "honest calibration flagged: {stale_honest:?}");
        let (flag_skewed, stale_skewed) = run_with(honest * 64.0);
        assert!(flag_skewed, "64× CPU skew must flag");
        assert!(
            stale_skewed
                .iter()
                .any(|c| c == "select" || c == "aggregate"),
            "{stale_skewed:?}"
        );
    }

    #[test]
    fn explain_analyze_records_into_the_flight_ring() {
        let mut svc = service();
        assert!(svc.flight().is_empty());
        let q1 = LogicalPlan::scan(0).select_lt(100).group_count();
        let q2 = LogicalPlan::scan(0).select_lt(300).group_count();
        let (report, pmu) = svc.explain_analyze(&q1).unwrap();
        let root = report.root.measured.as_ref().expect("operator root");
        assert!(root.ops > 0, "{report:?}");
        if !pmu.is_available() {
            // Host without perf counters: rows must be honestly absent.
            assert!(root.level_misses.is_empty());
        }
        svc.explain_analyze(&q2).unwrap();
        assert_eq!(svc.flight().len(), 2);
        let dump = svc.flight().dump_json_lines();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("\"plan\""), "{dump}");
        assert!(
            dump.contains(&format!("fp{:016x}", q1.fingerprint())),
            "{dump}"
        );
    }

    #[test]
    fn drift_flag_triggers_recalibration_that_updates_cpu_cost() {
        // The full closed loop, pinned: a 64× CPU miscalibration raises
        // the drift flag mid-run, the installed recalibrator probes on
        // a background thread (a fake probe here, so the test is
        // deterministic), and applying the result swaps the honest
        // charge back in, bumps the stats epoch so cached plans
        // re-price, and resets the monitor.
        let honest = CpuCost::DEFAULT_PLANNER_PER_OP_NS;
        let mut svc = QueryService::with_config(
            presets::tiny_smp(4),
            ServiceConfig {
                max_batch: 1,
                per_op_ns: honest * 64.0,
                ..ServiceConfig::default()
            },
        );
        let probed = Arc::new(Mutex::new(Vec::<String>::new()));
        let probed2 = Arc::clone(&probed);
        svc.set_recalibrator(Recalibrator::new(move |stale| {
            probed2.lock().unwrap().extend(stale.iter().cloned());
            Recalibration {
                per_op_ns: CpuCost::DEFAULT_PLANNER_PER_OP_NS,
                spec: None,
            }
        }));
        let mut wl = Workload::new(45);
        let star = wl.star_scenario(3_000, 500, 1);
        svc.register_table("F", star.fact, 8);
        svc.register_table("D", star.dims[0].clone(), 8);
        let epoch_before = svc.catalog().epoch();
        for i in 0..10 {
            svc.submit(LogicalPlan::scan(0).select_lt(100 + 10 * i).group_count())
                .unwrap();
        }
        svc.run().unwrap();
        // The async pump may have landed the swap already; flush any
        // probe still in flight so the assertion is deterministic.
        if svc.recalibrations() == 0 {
            assert!(svc.recalibrate_now(), "drift flag never raised a probe");
        }
        assert!(svc.recalibrations() >= 1);
        assert_eq!(
            svc.cpu_per_op_ns(),
            honest,
            "recalibration must replace the optimizer's CpuCost charge"
        );
        assert!(
            svc.catalog().epoch() > epoch_before,
            "epoch must bump so cached plans re-price"
        );
        assert!(
            !svc.drift().needs_recalibration(),
            "monitor resets after the swap"
        );
        let probed = probed.lock().unwrap();
        assert!(
            probed.iter().any(|c| c == "select" || c == "aggregate"),
            "probe must receive the stale classes: {probed:?}"
        );
        let prom = svc.metrics().to_prometheus();
        assert!(prom.contains("gcm_service_recalibrations_total"), "{prom}");
    }

    #[test]
    fn metrics_export_prometheus_and_json() {
        let mut svc = service();
        for cut in [100, 200, 300] {
            svc.submit(LogicalPlan::scan(0).select_lt(cut).group_count())
                .unwrap();
        }
        svc.run().unwrap();
        let m = svc.metrics();
        let (p50, p99, p999) = m.latency_quantiles().unwrap();
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999);
        let prom = m.to_prometheus();
        assert!(
            prom.contains("# TYPE gcm_service_query_latency_ns summary"),
            "{prom}"
        );
        assert!(prom.contains("gcm_service_queries_total 3"), "{prom}");
        assert!(prom.contains("gcm_service_spans_dropped_total 0"), "{prom}");
        let json = m.to_json_lines();
        assert!(json.lines().count() >= 5, "{json}");
    }

    fn classed_service(slo: SloPolicy) -> (QueryService, TenantTables) {
        let mut svc = QueryService::with_config(
            presets::tiny_smp(4),
            ServiceConfig {
                slo: Some(slo),
                ..ServiceConfig::default()
            },
        );
        let mut wl = Workload::new(42);
        let star = wl.star_scenario(3_000, 500, 1);
        svc.register_table("F", star.fact, 8);
        svc.register_table("D", star.dims[0].clone(), 8);
        (
            svc,
            TenantTables {
                fact: 0,
                dim: 1,
                key_bound: 500,
            },
        )
    }

    fn request(class: TenantClass) -> gcm_workload::QueryRequest {
        gcm_workload::QueryRequest {
            tenant: 0,
            class,
            selectivity: class.selectivity_buckets()[0],
        }
    }

    #[test]
    fn shed_pass_sheds_the_class_whose_budget_is_blown() {
        // Joins get an impossible budget, point lookups an unlimited
        // one: the join sheds, the point lookup is served.
        let (mut svc, t) = classed_service(SloPolicy {
            point_lookup_ns: f64::MAX,
            scan_heavy_ns: f64::MAX,
            join_heavy_ns: 1.0,
        });
        let point = svc
            .submit_classed(
                plan_for(&request(TenantClass::PointLookup), &t),
                TenantClass::PointLookup,
                0,
            )
            .unwrap();
        let join = svc
            .submit_classed(
                plan_for(&request(TenantClass::JoinHeavy), &t),
                TenantClass::JoinHeavy,
                0,
            )
            .unwrap();
        let (shed, batch) = svc.next_batch_at(100);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, join);
        assert_eq!(shed[0].class, TenantClass::JoinHeavy);
        assert!(shed[0].projected_ns > shed[0].budget_ns);
        let batch = batch.unwrap();
        assert!(batch.ids().contains(&point));
        assert!(!batch.ids().contains(&join));
        // The record and the labeled counter both landed.
        let m = svc.metrics();
        assert_eq!(m.shed_total(), 1);
        assert_eq!(m.shed_for_class(TenantClass::JoinHeavy), 1);
        assert_eq!(
            m.registry
                .counter("gcm_service_shed_total{class=\"join_heavy\"}"),
            Some(1)
        );
        assert_eq!(m.registry.gauge("gcm_service_queue_depth"), Some(0.0));
        assert!(m.registry.gauge("gcm_service_queue_depth_peak").unwrap() >= 2.0);
    }

    #[test]
    fn unclassed_submissions_never_shed() {
        // A zero budget sheds every classed query instantly — but a
        // plain submit is exempt no matter how stale it is.
        let (mut svc, t) = classed_service(SloPolicy::uniform(0.0));
        let plain = svc
            .submit(plan_for(&request(TenantClass::ScanHeavy), &t))
            .unwrap();
        let classed = svc
            .submit_classed(
                plan_for(&request(TenantClass::JoinHeavy), &t),
                TenantClass::JoinHeavy,
                0,
            )
            .unwrap();
        let (shed, batch) = svc.next_batch_at(1_000_000);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, classed);
        let ids = batch.unwrap().ids();
        assert_eq!(ids, vec![plain]);
    }

    #[test]
    fn priority_order_serves_point_lookups_before_joins() {
        // Joins arrive first but point lookups outrank them: the batch
        // head (admission always admits the first candidate) must be
        // the point lookup.
        let (mut svc, t) = classed_service(SloPolicy::uniform(f64::MAX));
        let join = svc
            .submit_classed(
                plan_for(&request(TenantClass::JoinHeavy), &t),
                TenantClass::JoinHeavy,
                0,
            )
            .unwrap();
        let point = svc
            .submit_classed(
                plan_for(&request(TenantClass::PointLookup), &t),
                TenantClass::PointLookup,
                5,
            )
            .unwrap();
        let (shed, batch) = svc.next_batch_at(10);
        assert!(shed.is_empty());
        let ids = batch.unwrap().ids();
        assert_eq!(ids[0], point, "{ids:?}");
        // The join is either in this batch behind the point lookup or
        // still queued — never lost.
        assert!(ids.contains(&join) || svc.queue_len() == 1);
    }

    #[test]
    fn without_slo_next_batch_at_is_plain_next_batch() {
        let mut svc = service();
        svc.submit(LogicalPlan::scan(0).select_lt(100).group_count())
            .unwrap();
        let (shed, batch) = svc.next_batch_at(u64::MAX);
        assert!(shed.is_empty());
        assert_eq!(batch.unwrap().size(), 1);
    }

    #[test]
    fn native_observed_execution_routes_ids_and_seeds_wall_scale() {
        let run = |observed: bool| -> Vec<(u64, u64, u64)> {
            let (mut svc, t) = classed_service(SloPolicy::uniform(f64::MAX));
            for class in [TenantClass::PointLookup, TenantClass::ScanHeavy] {
                svc.submit_classed(plan_for(&request(class), &t), class, 0)
                    .unwrap();
            }
            let mut out = Vec::new();
            while let (_, Some(batch)) = svc.next_batch_at(0) {
                if observed {
                    for (id, r) in svc.execute_batch_native_observed(batch).unwrap() {
                        out.push((id, r.output_n, r.output_hash));
                    }
                } else {
                    let ids = batch.ids();
                    for (id, r) in ids
                        .into_iter()
                        .zip(svc.execute_batch_native(batch).unwrap())
                    {
                        out.push((id, r.output_n, r.output_hash));
                    }
                }
            }
            out.sort_unstable();
            out
        };
        assert_eq!(
            run(true),
            run(false),
            "observed path must not change results"
        );
        // The EWMA seeds off the first observed batch.
        let (mut svc, t) = classed_service(SloPolicy::uniform(f64::MAX));
        assert_eq!(svc.wall_scale(), 1.0);
        svc.submit_classed(
            plan_for(&request(TenantClass::ScanHeavy), &t),
            TenantClass::ScanHeavy,
            0,
        )
        .unwrap();
        let (_, batch) = svc.next_batch_at(0);
        svc.execute_batch_native_observed(batch.unwrap()).unwrap();
        assert!(svc.wall_scale() > 0.0 && svc.wall_scale() != 1.0);
        let m = svc.metrics();
        assert_eq!(
            m.registry.counter("gcm_service_native_batches_total"),
            Some(1)
        );
        assert!(m
            .registry
            .histogram("gcm_service_native_query_ns{class=\"scan_heavy\"}")
            .is_some());
    }

    #[test]
    fn results_match_between_batched_and_serial_scheduling() {
        // The same queue drained with batching and with max_batch 1
        // must produce identical per-query outputs.
        let run_with = |max_batch: usize| -> Vec<(u64, u64)> {
            let mut svc = QueryService::with_config(
                presets::tiny_smp(4),
                ServiceConfig {
                    max_batch,
                    ..ServiceConfig::default()
                },
            );
            let mut wl = Workload::new(44);
            let star = wl.star_scenario(2_000, 400, 1);
            svc.register_table("F", star.fact, 8);
            svc.register_table("D", star.dims[0].clone(), 8);
            for cut in [50, 150, 250] {
                svc.submit(
                    LogicalPlan::scan(0)
                        .select_lt(cut)
                        .join(LogicalPlan::scan(1))
                        .group_count(),
                )
                .unwrap();
            }
            svc.run().unwrap();
            let mut out: Vec<(u64, u64)> = svc
                .metrics()
                .queries
                .iter()
                .map(|q| (q.id, q.output_n))
                .collect();
            out.sort_unstable();
            out
        };
        assert_eq!(run_with(4), run_with(1));
    }
}
