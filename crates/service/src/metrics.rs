//! Service telemetry: per-query latency, per-batch accuracy, and
//! plan-cache effectiveness.

use std::fmt;

/// One executed query's record.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The id [`crate::QueryService::submit`] returned.
    pub id: u64,
    /// The logical plan (display form).
    pub plan: String,
    /// Index into [`ServiceMetrics::batches`] of the batch it ran in.
    pub batch: usize,
    /// Predicted latency inside its batch (⊙-composed memory + CPU),
    /// ns.
    pub predicted_ns: f64,
    /// Measured latency (charged memory + per-op CPU), ns.
    pub measured_ns: f64,
    /// Output cardinality.
    pub output_n: u64,
    /// FNV-1a hash of the output relation's bytes
    /// ([`ExecutedQuery::output_hash`](crate::executor::ExecutedQuery)):
    /// equal hashes ⇔ byte-identical results.
    pub output_hash: u64,
}

impl QueryRecord {
    /// Relative prediction error `|measured − predicted| / measured`.
    pub fn error(&self) -> f64 {
        (self.measured_ns - self.predicted_ns).abs() / self.measured_ns.max(1.0)
    }
}

/// One executed batch's record.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Ids of the member queries.
    pub ids: Vec<u64>,
    /// Predicted batch wall time, ns.
    pub predicted_wall_ns: f64,
    /// Predicted serial fallback for the same members, ns.
    pub predicted_serial_ns: f64,
    /// Measured batch wall time: the slowest member plus the same
    /// per-worker dispatch constant the prediction charges (dispatch is
    /// host-side thread bring-up the simulator cannot see; charging it
    /// on both sides keeps [`BatchRecord::accuracy`] about the model),
    /// ns.
    pub measured_wall_ns: f64,
}

impl BatchRecord {
    /// Number of member queries.
    pub fn size(&self) -> usize {
        self.ids.len()
    }

    /// `measured / predicted` wall-time ratio (1.0 is a perfect
    /// prediction).
    pub fn accuracy(&self) -> f64 {
        self.measured_wall_ns / self.predicted_wall_ns.max(1.0)
    }
}

/// The service's accumulated report.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Every executed query, in execution order.
    pub queries: Vec<QueryRecord>,
    /// Every executed batch, in execution order.
    pub batches: Vec<BatchRecord>,
    /// Plan-cache hits among all submissions so far.
    pub cache_hits: u64,
    /// Plan-cache misses among all submissions so far.
    pub cache_misses: u64,
    /// Times the optimizer actually ran.
    pub optimizer_runs: u64,
    /// Plan-cache entries retired by statistics-epoch bumps.
    pub cache_retired: u64,
    /// Shared hash-join builds computed
    /// ([`BuildRegistry`](crate::builds::BuildRegistry) misses).
    pub builds_built: u64,
    /// Shared-build requests served from an existing build — every
    /// reuse is one build phase a query skipped.
    pub builds_reused: u64,
}

impl ServiceMetrics {
    /// Plan-cache hit fraction (0 when nothing was submitted).
    pub fn hit_rate(&self) -> f64 {
        let total = (self.cache_hits + self.cache_misses) as f64;
        if total > 0.0 {
            self.cache_hits as f64 / total
        } else {
            0.0
        }
    }

    /// Largest executed batch (0 when nothing ran).
    pub fn max_batch_size(&self) -> usize {
        self.batches
            .iter()
            .map(BatchRecord::size)
            .max()
            .unwrap_or(0)
    }

    /// Mean relative per-query prediction error.
    pub fn mean_query_error(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(QueryRecord::error).sum::<f64>() / self.queries.len() as f64
    }

    /// Total measured wall time across all batches, ns — the queue's
    /// elapsed service time.
    pub fn total_wall_ns(&self) -> f64 {
        self.batches.iter().map(|b| b.measured_wall_ns).sum()
    }

    /// Sum of the predicted serial fallbacks, ns — what the queue would
    /// have cost without batching, by the model's account.
    pub fn predicted_serial_total_ns(&self) -> f64 {
        self.batches.iter().map(|b| b.predicted_serial_ns).sum()
    }
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries {}  batches {}  max batch {}  cache hit rate {:.0}%  optimizer runs {}",
            self.queries.len(),
            self.batches.len(),
            self.max_batch_size(),
            self.hit_rate() * 100.0,
            self.optimizer_runs,
        )?;
        writeln!(
            f,
            "cache retired {}  shared builds {} built / {} reused",
            self.cache_retired, self.builds_built, self.builds_reused,
        )?;
        write!(
            f,
            "measured wall {:.2} ms  predicted-serial {:.2} ms  mean query error {:.0}%",
            self.total_wall_ns() / 1e6,
            self.predicted_serial_total_ns() / 1e6,
            self.mean_query_error() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(predicted: f64, measured: f64) -> QueryRecord {
        QueryRecord {
            id: 0,
            plan: "scan(0)".into(),
            batch: 0,
            predicted_ns: predicted,
            measured_ns: measured,
            output_n: 1,
            output_hash: 0,
        }
    }

    #[test]
    fn rates_and_errors() {
        let m = ServiceMetrics {
            queries: vec![record(100.0, 125.0), record(200.0, 160.0)],
            batches: vec![
                BatchRecord {
                    ids: vec![1, 2],
                    predicted_wall_ns: 200.0,
                    predicted_serial_ns: 300.0,
                    measured_wall_ns: 220.0,
                },
                BatchRecord {
                    ids: vec![3],
                    predicted_wall_ns: 50.0,
                    predicted_serial_ns: 50.0,
                    measured_wall_ns: 40.0,
                },
            ],
            cache_hits: 3,
            cache_misses: 1,
            optimizer_runs: 1,
            cache_retired: 2,
            builds_built: 1,
            builds_reused: 3,
        };
        assert!((m.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(m.max_batch_size(), 2);
        // Errors: |125−100|/125 = 0.2 and |160−200|/160 = 0.25.
        assert!((m.mean_query_error() - 0.225).abs() < 1e-9);
        assert!((m.total_wall_ns() - 260.0).abs() < 1e-9);
        assert!((m.predicted_serial_total_ns() - 350.0).abs() < 1e-9);
        assert!((m.batches[0].accuracy() - 1.1).abs() < 1e-9);
        let s = m.to_string();
        assert!(s.contains("hit rate 75%"), "{s}");
        assert!(s.contains("1 built / 3 reused"), "{s}");
    }

    #[test]
    fn empty_metrics_are_calm() {
        let m = ServiceMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.max_batch_size(), 0);
        assert_eq!(m.mean_query_error(), 0.0);
    }
}
