//! Service telemetry: per-query latency, per-batch accuracy, and
//! plan-cache effectiveness.
//!
//! Next to the exact per-query/per-batch record vectors (kept: tests
//! and the accuracy report read them), every executed query and batch
//! also lands in a [`MetricsRegistry`] — counters, gauges, and
//! log-linear latency histograms with bounded-error quantiles
//! ([`gcm_obs::hist`]) — which is what the exporters
//! ([`ServiceMetrics::to_prometheus`] /
//! [`ServiceMetrics::to_json_lines`]) serialize. The registry is the
//! *aggregated* view a scrape reads in O(1) space; the vectors are the
//! exact trace a test asserts on.

use gcm_obs::registry::labeled;
use gcm_obs::{Histogram, MetricsRegistry};
use gcm_workload::TenantClass;
use std::fmt;

/// Registry name of the per-query measured-latency histogram.
pub const QUERY_LATENCY: &str = "gcm_service_query_latency_ns";
/// Registry name of the per-query predicted-latency histogram.
pub const QUERY_PREDICTED: &str = "gcm_service_query_predicted_ns";
/// Registry name of the per-batch measured-wall histogram.
pub const BATCH_WALL: &str = "gcm_service_batch_wall_ns";
/// Registry name of the executed-query counter.
pub const QUERIES_TOTAL: &str = "gcm_service_queries_total";
/// Registry name of the executed-batch counter.
pub const BATCHES_TOTAL: &str = "gcm_service_batches_total";
/// Registry family of the per-class shed counters (the class lands in
/// a `{class="…"}` label).
pub const SHED_TOTAL: &str = "gcm_service_shed_total";
/// Registry name of the pending-queue depth gauge.
pub const QUEUE_DEPTH: &str = "gcm_service_queue_depth";
/// Registry name of the pending-queue high-water-mark gauge.
pub const QUEUE_DEPTH_PEAK: &str = "gcm_service_queue_depth_peak";

/// One executed query's record.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The id [`crate::QueryService::submit`] returned.
    pub id: u64,
    /// The logical plan (display form).
    pub plan: String,
    /// Index into [`ServiceMetrics::batches`] of the batch it ran in.
    pub batch: usize,
    /// Predicted latency inside its batch (⊙-composed memory + CPU),
    /// ns.
    pub predicted_ns: f64,
    /// Measured latency (charged memory + per-op CPU), ns.
    pub measured_ns: f64,
    /// Output cardinality.
    pub output_n: u64,
    /// FNV-1a hash of the output relation's bytes
    /// ([`ExecutedQuery::output_hash`](crate::executor::ExecutedQuery)):
    /// equal hashes ⇔ byte-identical results.
    pub output_hash: u64,
}

impl QueryRecord {
    /// Relative prediction error `|measured − predicted| / measured`.
    pub fn error(&self) -> f64 {
        (self.measured_ns - self.predicted_ns).abs() / self.measured_ns.max(1.0)
    }
}

/// One executed batch's record.
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Ids of the member queries.
    pub ids: Vec<u64>,
    /// Predicted batch wall time, ns.
    pub predicted_wall_ns: f64,
    /// Predicted serial fallback for the same members, ns.
    pub predicted_serial_ns: f64,
    /// Measured batch wall time: the slowest member plus the same
    /// per-worker dispatch constant the prediction charges (dispatch is
    /// host-side thread bring-up the simulator cannot see; charging it
    /// on both sides keeps [`BatchRecord::accuracy`] about the model),
    /// ns.
    pub measured_wall_ns: f64,
}

impl BatchRecord {
    /// Number of member queries.
    pub fn size(&self) -> usize {
        self.ids.len()
    }

    /// `measured / predicted` wall-time ratio (1.0 is a perfect
    /// prediction).
    pub fn accuracy(&self) -> f64 {
        self.measured_wall_ns / self.predicted_wall_ns.max(1.0)
    }
}

/// One shed query's record: what the service refused to serve, and
/// the projection that condemned it (see
/// [`crate::QueryService::next_batch_at`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShedRecord {
    /// The id [`crate::QueryService::submit_classed`] returned.
    pub id: u64,
    /// The query's tenant class (budgets and priority come from it).
    pub class: TenantClass,
    /// How long the query had already queued when it was shed, ns.
    pub waited_ns: u64,
    /// Projected sojourn at the shed decision (waited + ⊙-priced drain
    /// of the higher-priority work ahead of it), ns.
    pub projected_ns: f64,
    /// The class budget the projection overran, ns.
    pub budget_ns: f64,
}

/// The service's accumulated report.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Every executed query, in execution order.
    pub queries: Vec<QueryRecord>,
    /// Every executed batch, in execution order.
    pub batches: Vec<BatchRecord>,
    /// Every shed query, in shed order.
    pub shed: Vec<ShedRecord>,
    /// Plan-cache hits among all submissions so far.
    pub cache_hits: u64,
    /// Plan-cache misses among all submissions so far.
    pub cache_misses: u64,
    /// Times the optimizer actually ran.
    pub optimizer_runs: u64,
    /// Plan-cache entries retired by statistics-epoch bumps.
    pub cache_retired: u64,
    /// Shared hash-join builds computed
    /// ([`BuildRegistry`](crate::builds::BuildRegistry) misses).
    pub builds_built: u64,
    /// Shared-build requests served from an existing build — every
    /// reuse is one build phase a query skipped.
    pub builds_reused: u64,
    /// The aggregated counters/gauges/histograms behind the exporters.
    /// Interior-mutable (`&self` observes), so executors and benches
    /// can record into a shared metrics handle.
    pub registry: MetricsRegistry,
}

impl ServiceMetrics {
    /// Record one executed query: appends the exact [`QueryRecord`]
    /// *and* feeds the latency histograms and counters.
    pub fn record_query(&mut self, q: QueryRecord) {
        self.registry.observe_ns(QUERY_LATENCY, q.measured_ns);
        self.registry.observe_ns(QUERY_PREDICTED, q.predicted_ns);
        self.registry.inc(QUERIES_TOTAL, 1);
        self.queries.push(q);
    }

    /// Record one executed batch: appends the exact [`BatchRecord`]
    /// *and* feeds the batch-wall histogram and counters.
    pub fn record_batch(&mut self, b: BatchRecord) {
        self.registry.observe_ns(BATCH_WALL, b.measured_wall_ns);
        self.registry.inc(BATCHES_TOTAL, 1);
        self.registry
            .set_gauge("gcm_service_last_batch_size", b.size() as f64);
        self.batches.push(b);
    }

    /// Record one shed query: appends the exact [`ShedRecord`] *and*
    /// bumps the class's `gcm_service_shed_total{class="…"}` counter.
    pub fn record_shed(&mut self, s: ShedRecord) {
        self.registry
            .inc(&labeled(SHED_TOTAL, &[("class", s.class.label())]), 1);
        self.shed.push(s);
    }

    /// Total queries shed so far (across all classes).
    pub fn shed_total(&self) -> u64 {
        self.shed.len() as u64
    }

    /// Queries shed for one class so far.
    pub fn shed_for_class(&self, class: TenantClass) -> u64 {
        self.shed.iter().filter(|s| s.class == class).count() as u64
    }

    /// The measured per-query latency histogram, if any query ran.
    /// Quantiles carry the registry histogram's bounded relative error
    /// ([`gcm_obs::hist::QUANTILE_REL_ERROR`]).
    pub fn latency_histogram(&self) -> Option<Histogram> {
        self.registry.histogram(QUERY_LATENCY)
    }

    /// Measured latency quantiles `(p50, p99, p999)` in ns, `None`
    /// until a query has executed.
    pub fn latency_quantiles(&self) -> Option<(u64, u64, u64)> {
        let h = self.latency_histogram()?;
        Some((h.p50(), h.p99(), h.p999()))
    }

    /// Prometheus text exposition of the aggregated registry.
    pub fn to_prometheus(&self) -> String {
        self.registry.to_prometheus()
    }

    /// JSON-lines export of the aggregated registry (one metric per
    /// line).
    pub fn to_json_lines(&self) -> String {
        self.registry.to_json_lines()
    }
    /// Plan-cache hit fraction (0 when nothing was submitted).
    pub fn hit_rate(&self) -> f64 {
        let total = (self.cache_hits + self.cache_misses) as f64;
        if total > 0.0 {
            self.cache_hits as f64 / total
        } else {
            0.0
        }
    }

    /// Largest executed batch (0 when nothing ran).
    pub fn max_batch_size(&self) -> usize {
        self.batches
            .iter()
            .map(BatchRecord::size)
            .max()
            .unwrap_or(0)
    }

    /// Mean relative per-query prediction error.
    pub fn mean_query_error(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(QueryRecord::error).sum::<f64>() / self.queries.len() as f64
    }

    /// Total measured wall time across all batches, ns — the queue's
    /// elapsed service time.
    pub fn total_wall_ns(&self) -> f64 {
        self.batches.iter().map(|b| b.measured_wall_ns).sum()
    }

    /// Sum of the predicted serial fallbacks, ns — what the queue would
    /// have cost without batching, by the model's account.
    pub fn predicted_serial_total_ns(&self) -> f64 {
        self.batches.iter().map(|b| b.predicted_serial_ns).sum()
    }
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries {}  batches {}  max batch {}  cache hit rate {:.0}%  optimizer runs {}",
            self.queries.len(),
            self.batches.len(),
            self.max_batch_size(),
            self.hit_rate() * 100.0,
            self.optimizer_runs,
        )?;
        writeln!(
            f,
            "cache retired {}  shared builds {} built / {} reused  shed {}",
            self.cache_retired,
            self.builds_built,
            self.builds_reused,
            self.shed.len(),
        )?;
        write!(
            f,
            "measured wall {:.2} ms  predicted-serial {:.2} ms  mean query error {:.0}%",
            self.total_wall_ns() / 1e6,
            self.predicted_serial_total_ns() / 1e6,
            self.mean_query_error() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(predicted: f64, measured: f64) -> QueryRecord {
        QueryRecord {
            id: 0,
            plan: "scan(0)".into(),
            batch: 0,
            predicted_ns: predicted,
            measured_ns: measured,
            output_n: 1,
            output_hash: 0,
        }
    }

    #[test]
    fn rates_and_errors() {
        let m = ServiceMetrics {
            queries: vec![record(100.0, 125.0), record(200.0, 160.0)],
            shed: Vec::new(),
            batches: vec![
                BatchRecord {
                    ids: vec![1, 2],
                    predicted_wall_ns: 200.0,
                    predicted_serial_ns: 300.0,
                    measured_wall_ns: 220.0,
                },
                BatchRecord {
                    ids: vec![3],
                    predicted_wall_ns: 50.0,
                    predicted_serial_ns: 50.0,
                    measured_wall_ns: 40.0,
                },
            ],
            cache_hits: 3,
            cache_misses: 1,
            optimizer_runs: 1,
            cache_retired: 2,
            builds_built: 1,
            builds_reused: 3,
            registry: MetricsRegistry::default(),
        };
        assert!((m.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(m.max_batch_size(), 2);
        // Errors: |125−100|/125 = 0.2 and |160−200|/160 = 0.25.
        assert!((m.mean_query_error() - 0.225).abs() < 1e-9);
        assert!((m.total_wall_ns() - 260.0).abs() < 1e-9);
        assert!((m.predicted_serial_total_ns() - 350.0).abs() < 1e-9);
        assert!((m.batches[0].accuracy() - 1.1).abs() < 1e-9);
        let s = m.to_string();
        assert!(s.contains("hit rate 75%"), "{s}");
        assert!(s.contains("1 built / 3 reused"), "{s}");
    }

    #[test]
    fn empty_metrics_are_calm() {
        let m = ServiceMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.max_batch_size(), 0);
        assert_eq!(m.mean_query_error(), 0.0);
        assert!(m.latency_quantiles().is_none());
    }

    #[test]
    fn record_shed_feeds_vector_and_labeled_counters() {
        let mut m = ServiceMetrics::default();
        let shed = |id, class| ShedRecord {
            id,
            class,
            waited_ns: 500,
            projected_ns: 9_000.0,
            budget_ns: 2_000.0,
        };
        m.record_shed(shed(1, TenantClass::JoinHeavy));
        m.record_shed(shed(2, TenantClass::JoinHeavy));
        m.record_shed(shed(3, TenantClass::PointLookup));
        assert_eq!(m.shed_total(), 3);
        assert_eq!(m.shed_for_class(TenantClass::JoinHeavy), 2);
        assert_eq!(m.shed_for_class(TenantClass::ScanHeavy), 0);
        assert_eq!(
            m.registry
                .counter("gcm_service_shed_total{class=\"join_heavy\"}"),
            Some(2)
        );
        let prom = m.to_prometheus();
        assert!(
            prom.contains("# TYPE gcm_service_shed_total counter"),
            "{prom}"
        );
        assert!(
            prom.contains("gcm_service_shed_total{class=\"point_lookup\"} 1\n"),
            "{prom}"
        );
        assert!(m.to_string().contains("shed 3"), "{m}");
    }

    #[test]
    fn record_query_feeds_vectors_and_histograms() {
        let mut m = ServiceMetrics::default();
        for (p, ms) in [(100.0, 120.0), (200.0, 180.0), (400.0, 4000.0)] {
            let mut q = record(p, ms);
            q.id = m.queries.len() as u64;
            m.record_query(q);
        }
        m.record_batch(BatchRecord {
            ids: vec![0, 1, 2],
            predicted_wall_ns: 500.0,
            predicted_serial_ns: 700.0,
            measured_wall_ns: 4100.0,
        });
        assert_eq!(m.queries.len(), 3);
        assert_eq!(m.registry.counter(QUERIES_TOTAL), Some(3));
        assert_eq!(m.registry.counter(BATCHES_TOTAL), Some(1));
        let (p50, p99, p999) = m.latency_quantiles().unwrap();
        // Exact quantiles of {120, 180, 4000}: p50 = 180, p99 = 4000.
        assert!((p50 as f64 - 180.0).abs() / 180.0 <= gcm_obs::hist::QUANTILE_REL_ERROR);
        assert!((p99 as f64 - 4000.0).abs() / 4000.0 <= gcm_obs::hist::QUANTILE_REL_ERROR);
        assert!(p999 >= p99);
        let prom = m.to_prometheus();
        assert!(prom.contains("gcm_service_queries_total 3"), "{prom}");
        assert!(
            prom.contains("gcm_service_query_latency_ns{quantile=\"0.99\"}"),
            "{prom}"
        );
        let json = m.to_json_lines();
        assert!(json.contains("\"gcm_service_batch_wall_ns\""), "{json}");
    }
}
