//! Metrics registry: named counters, gauges, and histograms with
//! JSON-lines and Prometheus text exporters.
//!
//! Names follow Prometheus conventions (`snake_case`, unit suffix);
//! labels may be baked into the name Prometheus-style, e.g.
//! `query_latency_ns{class="join_heavy"}` — the exporters split on the
//! first `{` so the `# TYPE` header carries only the metric family.
//! A `BTreeMap` keeps export order stable, which is what lets tests
//! and committed bench artifacts pin exporter output.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Build a `family{key="value",…}` metric name with Prometheus
/// label-value escaping (`\` → `\\`, `"` → `\"`, newline → `\n`), so
/// arbitrary class names and paths survive the text exposition format.
/// With no labels the bare family is returned.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Log-linear sample distribution.
    Histogram(Histogram),
}

/// A thread-safe collection of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Clone for MetricsRegistry {
    fn clone(&self) -> Self {
        MetricsRegistry {
            inner: Mutex::new(self.inner.lock().unwrap().clone()),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (creating it at zero first).
    pub fn inc(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock().unwrap();
        match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            other => *other = Metric::Counter(delta),
        }
    }

    /// Set a counter to an absolute value (for mirroring externally
    /// maintained totals).
    pub fn set_counter(&self, name: &str, value: u64) {
        self.inner
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Counter(value));
    }

    /// Set a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Gauge(value));
    }

    /// Raise a gauge to `value` if it is below it (creating it at
    /// `value` first) — high-water marks such as peak queue depth,
    /// where sampling the instantaneous value between scrapes would
    /// miss the spikes that matter.
    pub fn gauge_max(&self, name: &str, value: f64) {
        let mut m = self.inner.lock().unwrap();
        match m.entry(name.to_string()).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(g) => *g = g.max(value),
            other => *other = Metric::Gauge(value),
        }
    }

    /// Record a sample into a histogram (creating it empty first).
    pub fn observe(&self, name: &str, value: u64) {
        let mut m = self.inner.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.record(value),
            other => {
                let mut h = Histogram::new();
                h.record(value);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// Record a float nanosecond sample into a histogram.
    pub fn observe_ns(&self, name: &str, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0).round() as u64
        } else {
            0
        };
        self.observe(name, v);
    }

    /// Current value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.inner.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Current value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.inner.lock().unwrap().get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A copy of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.inner.lock().unwrap().get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Names of all registered metrics, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().unwrap().keys().cloned().collect()
    }

    /// Prometheus text exposition format. Histograms export as
    /// summaries (`{quantile="…"}` series plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let m = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            // `family{label="x"}` → family for the # TYPE line.
            let (family, labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i..]),
                None => (name.as_str(), ""),
            };
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {family} counter\n{name} {c}\n"));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "# TYPE {family} gauge\n{name} {}\n",
                        crate::json::num(*g)
                    ));
                }
                Metric::Histogram(h) => {
                    // Splice quantile labels into any existing label set:
                    // family{a="b"} → family{a="b",quantile="0.5"}.
                    let series = |q: &str, v: u64| -> String {
                        if labels.is_empty() {
                            format!("{family}{{quantile=\"{q}\"}} {v}\n")
                        } else {
                            let inner = &labels[1..labels.len() - 1];
                            format!("{family}{{{inner},quantile=\"{q}\"}} {v}\n")
                        }
                    };
                    out.push_str(&format!("# TYPE {family} summary\n"));
                    out.push_str(&series("0.5", h.p50()));
                    out.push_str(&series("0.99", h.p99()));
                    out.push_str(&series("0.999", h.p999()));
                    out.push_str(&format!(
                        "{family}_sum{labels} {}\n{family}_count{labels} {}\n",
                        crate::json::num(h.sum()),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// JSON-lines export: one object per metric, in name order.
    pub fn to_json_lines(&self) -> String {
        let m = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            let mut o = crate::json::Obj::new();
            o.str("name", name);
            match metric {
                Metric::Counter(c) => {
                    o.str("type", "counter").u64("value", *c);
                }
                Metric::Gauge(g) => {
                    o.str("type", "gauge").num("value", *g);
                }
                Metric::Histogram(h) => {
                    o.str("type", "histogram").raw("value", &h.to_json());
                }
            }
            out.push_str(&o.finish());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = MetricsRegistry::new();
        r.inc("queries_total", 1);
        r.inc("queries_total", 2);
        r.set_gauge("queue_depth", 4.0);
        assert_eq!(r.counter("queries_total"), Some(3));
        assert_eq!(r.gauge("queue_depth"), Some(4.0));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let r = MetricsRegistry::new();
        r.gauge_max("queue_depth_peak", 3.0);
        r.gauge_max("queue_depth_peak", 9.0);
        r.gauge_max("queue_depth_peak", 5.0);
        assert_eq!(r.gauge("queue_depth_peak"), Some(9.0));
        // Raising an existing plain gauge works the same way.
        r.set_gauge("d", 2.0);
        r.gauge_max("d", 1.0);
        assert_eq!(r.gauge("d"), Some(2.0));
    }

    #[test]
    fn histograms_accumulate() {
        let r = MetricsRegistry::new();
        for v in [10u64, 20, 30] {
            r.observe("latency_ns", v);
        }
        let h = r.histogram("latency_ns").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn prometheus_export_is_stable_and_typed() {
        let r = MetricsRegistry::new();
        r.inc("b_total", 7);
        r.set_gauge("a_gauge", 1.5);
        r.observe("c_ns", 100);
        let text = r.to_prometheus();
        // BTreeMap order: a_gauge, b_total, c_ns.
        let a = text.find("# TYPE a_gauge gauge").unwrap();
        let b = text.find("# TYPE b_total counter").unwrap();
        let c = text.find("# TYPE c_ns summary").unwrap();
        assert!(a < b && b < c, "{text}");
        assert!(text.contains("b_total 7\n"), "{text}");
        assert!(text.contains("c_ns{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("c_ns_count 1\n"), "{text}");
    }

    #[test]
    fn prometheus_labels_stay_on_series_not_type() {
        let r = MetricsRegistry::new();
        r.observe("lat_ns{class=\"join\"}", 50);
        r.inc("hits_total{tier=\"l1\"}", 2);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat_ns summary\n"), "{text}");
        assert!(
            text.contains("lat_ns{class=\"join\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("lat_ns_count{class=\"join\"} 1"), "{text}");
        assert!(text.contains("# TYPE hits_total counter\n"), "{text}");
        assert!(text.contains("hits_total{tier=\"l1\"} 2\n"), "{text}");
    }

    #[test]
    fn json_lines_one_object_per_metric() {
        let r = MetricsRegistry::new();
        r.inc("n", 1);
        r.observe("h", 5);
        let text = r.to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"histogram\""), "{}", lines[0]);
        assert!(lines[1].contains("\"type\":\"counter\""), "{}", lines[1]);
    }

    #[test]
    fn labeled_escapes_prometheus_special_characters() {
        assert_eq!(labeled("m_total", &[]), "m_total");
        assert_eq!(
            labeled("m_total", &[("class", "join"), ("lane", "0")]),
            "m_total{class=\"join\",lane=\"0\"}"
        );
        assert_eq!(
            labeled("m", &[("path", "a\\b\"c\nd")]),
            "m{path=\"a\\\\b\\\"c\\nd\"}"
        );
        // The escaped name still splits cleanly for the exporter.
        let r = MetricsRegistry::new();
        r.inc(&labeled("esc_total", &[("p", "x\"y")]), 1);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE esc_total counter\n"), "{text}");
        assert!(text.contains("esc_total{p=\"x\\\"y\"} 1\n"), "{text}");
    }

    #[test]
    fn clone_snapshots_state() {
        let r = MetricsRegistry::new();
        r.inc("n", 5);
        let snap = r.clone();
        r.inc("n", 5);
        assert_eq!(snap.counter("n"), Some(5));
        assert_eq!(r.counter("n"), Some(10));
    }
}
