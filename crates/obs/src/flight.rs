//! A flight recorder for EXPLAIN ANALYZE reports.
//!
//! PMU-backed explain runs are only useful after the fact: when a
//! drift flag fires or a latency regression lands, the question is
//! "what did the last few plans *actually* do to the memory
//! hierarchy?". This ring keeps the most recent N reports (rendered
//! JSON plus a label) behind a mutex, evicting the oldest, so a
//! service or bench can dump them as JSON-lines post-hoc without ever
//! growing unboundedly.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One retained report.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Monotone sequence number (1-based, never reused) — survives
    /// eviction, so gaps in a dump reveal how much was dropped.
    pub seq: u64,
    /// Caller-chosen label (plan name, query id, bench case).
    pub label: String,
    /// The report body as a JSON object string.
    pub json: String,
}

/// Fixed-capacity ring of the last N reports. All methods take
/// `&self`; the ring is safe to share behind an `Arc`.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<FlightEntry>,
    next_seq: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` reports (`cap` is clamped to
    /// at least 1).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                next_seq: 1,
                evicted: 0,
            }),
        }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Record one report; returns its sequence number. Evicts the
    /// oldest entry when full.
    pub fn record(&self, label: &str, report_json: &str) -> u64 {
        let mut g = self.inner.lock().unwrap();
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.ring.len() == self.cap {
            g.ring.pop_front();
            g.evicted += 1;
        }
        g.ring.push_back(FlightEntry {
            seq,
            label: label.to_string(),
            json: report_json.to_string(),
        });
        seq
    }

    /// Number of reports currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total reports evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap().evicted
    }

    /// Snapshot of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// The ring as JSON-lines, oldest first: one object per line with
    /// `seq`, `label`, and the report under `report` (spliced raw — it
    /// is already JSON).
    pub fn dump_json_lines(&self) -> String {
        let g = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in &g.ring {
            let mut o = crate::json::Obj::new();
            o.u64("seq", e.seq)
                .str("label", &e.label)
                .raw("report", &e.json);
            out.push_str(&o.finish());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_last_n() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(&format!("q{i}"), &format!("{{\"i\":{i}}}"));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.evicted(), 2);
        let got: Vec<String> = fr.entries().iter().map(|e| e.label.clone()).collect();
        assert_eq!(got, ["q2", "q3", "q4"]);
        // Sequence numbers survive eviction: the dump reveals the gap.
        assert_eq!(fr.entries()[0].seq, 3);
    }

    #[test]
    fn dump_is_one_json_object_per_line() {
        let fr = FlightRecorder::new(8);
        fr.record("a", "{\"x\":1}");
        fr.record("b", "{\"x\":2}");
        let dump = fr.dump_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"seq\":1,\"label\":\"a\",\"report\":{\"x\":1}}");
        assert_eq!(lines[1], "{\"seq\":2,\"label\":\"b\",\"report\":{\"x\":2}}");
    }

    #[test]
    fn capacity_is_clamped_and_shared_access_works() {
        let fr = std::sync::Arc::new(FlightRecorder::new(0));
        assert_eq!(fr.capacity(), 1);
        let fr2 = fr.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                fr2.record("t", "{}");
            }
        });
        for _ in 0..100 {
            fr.record("m", "{}");
        }
        t.join().unwrap();
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.evicted(), 199);
    }
}
