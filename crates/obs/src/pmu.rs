//! Hardware performance counters via a raw `perf_event_open` shim.
//!
//! The paper's Eq 6.1 predicts *cache and TLB misses*; the simulator
//! can verify those predictions exactly, but on the native backend the
//! only observable so far was wall time. This module closes that gap
//! with the thinnest possible reader of Linux's PMU interface: a
//! `repr(C)` `perf_event_attr`, the `perf_event_open` syscall number
//! for the architectures we build on, and `read`/`ioctl`/`close` —
//! all through `extern "C"` declarations against the libc the Rust
//! runtime already links, so the workspace stays dependency-free.
//!
//! One [`PmuGroup`] holds five counters scheduled as a unit (grouped,
//! so their values describe the same instruction window): L1D read
//! misses, LLC read misses, dTLB read misses, instructions, cycles.
//! Reads use `PERF_FORMAT_GROUP` with total-time-enabled/running so a
//! multiplexed group is scaled honestly rather than silently
//! under-reported.
//!
//! Counting is **per thread** (`pid = 0, cpu = -1`): attach the group
//! on the thread that executes the measured work.
//!
//! # Availability is a first-class outcome
//!
//! Containers, non-Linux hosts, and locked-down kernels
//! (`/proc/sys/kernel/perf_event_paranoid` ≥ 2 blocks unprivileged
//! counting on many distros; some VMs expose no PMU at all) refuse the
//! syscall. Every entry point reports that as
//! [`PmuStatus::Unavailable`] with the errno-derived reason — callers
//! fall back to wall-clock-only attribution and *say so*, never
//! pretending "no counters" means "zero misses".

/// Whether hardware counters can be opened, and why not when they
/// cannot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmuStatus {
    /// `perf_event_open` accepted the standard counter group.
    Available,
    /// Counters cannot be opened on this platform/configuration.
    Unavailable {
        /// Human-readable cause (platform, errno, paranoid level).
        reason: String,
    },
}

impl PmuStatus {
    /// True when counters can be read.
    pub fn is_available(&self) -> bool {
        matches!(self, PmuStatus::Available)
    }
}

impl std::fmt::Display for PmuStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmuStatus::Available => write!(f, "available"),
            PmuStatus::Unavailable { reason } => write!(f, "unavailable: {reason}"),
        }
    }
}

/// The counters of the standard group, in group (read) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmuEvent {
    /// L1 data-cache read misses.
    L1dMiss,
    /// Last-level-cache read misses.
    LlcMiss,
    /// Data-TLB read misses.
    DtlbMiss,
    /// Retired instructions.
    Instructions,
    /// CPU cycles.
    Cycles,
}

/// Group order: cache/TLB events first (the three programmable
/// counters), then the two events x86 serves from fixed counters — a
/// five-member group that fits a typical 4-programmable PMU.
pub const PMU_EVENTS: [PmuEvent; 5] = [
    PmuEvent::L1dMiss,
    PmuEvent::LlcMiss,
    PmuEvent::DtlbMiss,
    PmuEvent::Instructions,
    PmuEvent::Cycles,
];

impl PmuEvent {
    /// The display name; the three miss counters use the level names
    /// the native backend reports per-level miss rows under.
    pub fn label(self) -> &'static str {
        match self {
            PmuEvent::L1dMiss => "L1d",
            PmuEvent::LlcMiss => "LLC",
            PmuEvent::DtlbMiss => "dTLB",
            PmuEvent::Instructions => "instructions",
            PmuEvent::Cycles => "cycles",
        }
    }
}

/// One cumulative reading of the standard group. Monotone while the
/// group stays enabled; diff two with [`PmuSample::since`].
///
/// Values are scaled by `time_enabled / time_running` when the kernel
/// multiplexed the group, so they estimate the full window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmuSample {
    /// L1 data-cache read misses.
    pub l1d_miss: u64,
    /// Last-level-cache read misses.
    pub llc_miss: u64,
    /// Data-TLB read misses.
    pub dtlb_miss: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// CPU cycles.
    pub cycles: u64,
    /// Nanoseconds the group was enabled.
    pub time_enabled_ns: u64,
    /// Nanoseconds the group was actually scheduled on the PMU.
    pub time_running_ns: u64,
}

impl PmuSample {
    /// The interval sample since `earlier` (saturating, so a counter
    /// reset never produces nonsense).
    pub fn since(&self, earlier: &PmuSample) -> PmuSample {
        PmuSample {
            l1d_miss: self.l1d_miss.saturating_sub(earlier.l1d_miss),
            llc_miss: self.llc_miss.saturating_sub(earlier.llc_miss),
            dtlb_miss: self.dtlb_miss.saturating_sub(earlier.dtlb_miss),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            cycles: self.cycles.saturating_sub(earlier.cycles),
            time_enabled_ns: self.time_enabled_ns.saturating_sub(earlier.time_enabled_ns),
            time_running_ns: self.time_running_ns.saturating_sub(earlier.time_running_ns),
        }
    }

    /// Per-level `(name, misses)` rows in hierarchy order — the shape
    /// [`counter_level_misses`][note] reports on the native backend.
    ///
    /// [note]: PmuSample::level_misses
    pub fn level_misses(&self) -> [(&'static str, u64); 3] {
        [
            ("L1d", self.l1d_miss),
            ("LLC", self.llc_miss),
            ("dTLB", self.dtlb_miss),
        ]
    }

    /// True when the group was on the PMU for its whole enabled window
    /// (no multiplex scaling was applied).
    pub fn fully_scheduled(&self) -> bool {
        self.time_running_ns >= self.time_enabled_ns
    }
}

/// The kernel's unprivileged-perf policy knob, if readable.
/// `2` (the common default) still allows user-space-only counting;
/// `3+` (hardened kernels) blocks unprivileged `perf_event_open`
/// entirely.
pub fn paranoid_level() -> Option<i64> {
    std::fs::read_to_string("/proc/sys/kernel/perf_event_paranoid")
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// Probe whether the standard counter group can be opened right now
/// (opens and immediately closes one).
pub fn pmu_status() -> PmuStatus {
    match PmuGroup::standard() {
        Ok(_group) => PmuStatus::Available,
        Err(status) => status,
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{paranoid_level, PmuEvent, PmuStatus};

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: i64 = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: i64 = 241;

    // perf_event_attr layout through PERF_ATTR_SIZE_VER5 (112 bytes,
    // kernel ≥ 4.1) — old enough that every kernel we can meet accepts
    // the size, new enough for everything this reader uses.
    const ATTR_SIZE: u32 = 112;

    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_TYPE_HW_CACHE: u32 = 3;

    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;

    // Cache config encoding: `id | (op << 8) | (result << 16)`.
    const CACHE_L1D: u64 = 0;
    const CACHE_LL: u64 = 2;
    const CACHE_DTLB: u64 = 3;
    const CACHE_OP_READ: u64 = 0;
    const CACHE_RESULT_MISS: u64 = 1;

    const READ_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const READ_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const READ_FORMAT_GROUP: u64 = 1 << 3;

    // Bit offsets in the attr flags bitfield.
    const FLAG_DISABLED: u64 = 1 << 0;
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;

    const PERF_FLAG_FD_CLOEXEC: i64 = 1 << 3;

    const PERF_EVENT_IOC_ENABLE: u64 = 0x2400;
    const PERF_EVENT_IOC_DISABLE: u64 = 0x2401;
    const PERF_EVENT_IOC_RESET: u64 = 0x2403;
    const PERF_IOC_FLAG_GROUP: u64 = 1;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
        config2: u64,
        branch_sample_type: u64,
        sample_regs_user: u64,
        sample_stack_user: u32,
        clockid: i32,
        sample_regs_intr: u64,
        aux_watermark: u32,
        sample_max_stack: u16,
        reserved_2: u16,
    }

    // Symbols std's libc link already provides; declaring them here is
    // what keeps the crate free of the `libc` crate.
    extern "C" {
        fn syscall(num: i64, ...) -> i64;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn ioctl(fd: i32, request: u64, ...) -> i32;
        fn __errno_location() -> *mut i32;
    }

    fn errno() -> i32 {
        unsafe { *__errno_location() }
    }

    fn event_type_config(ev: PmuEvent) -> (u32, u64) {
        let cache = |id: u64| {
            (
                PERF_TYPE_HW_CACHE,
                id | (CACHE_OP_READ << 8) | (CACHE_RESULT_MISS << 16),
            )
        };
        match ev {
            PmuEvent::L1dMiss => cache(CACHE_L1D),
            PmuEvent::LlcMiss => cache(CACHE_LL),
            PmuEvent::DtlbMiss => cache(CACHE_DTLB),
            PmuEvent::Instructions => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
            PmuEvent::Cycles => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
        }
    }

    fn open_event(ev: PmuEvent, group_fd: i32) -> Result<i32, PmuStatus> {
        let (type_, config) = event_type_config(ev);
        let attr = PerfEventAttr {
            type_,
            size: ATTR_SIZE,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: READ_FORMAT_GROUP
                | READ_FORMAT_TOTAL_TIME_ENABLED
                | READ_FORMAT_TOTAL_TIME_RUNNING,
            // Only the leader starts disabled; members follow it.
            flags: if group_fd < 0 { FLAG_DISABLED } else { 0 }
                | FLAG_EXCLUDE_KERNEL
                | FLAG_EXCLUDE_HV,
            wakeup_events: 0,
            bp_type: 0,
            config1: 0,
            config2: 0,
            branch_sample_type: 0,
            sample_regs_user: 0,
            sample_stack_user: 0,
            clockid: 0,
            sample_regs_intr: 0,
            aux_watermark: 0,
            sample_max_stack: 0,
            reserved_2: 0,
        };
        // pid = 0 (this thread), cpu = -1 (any CPU it runs on).
        let fd = unsafe {
            syscall(
                SYS_PERF_EVENT_OPEN,
                &attr as *const PerfEventAttr as i64,
                0i64,
                -1i64,
                group_fd as i64,
                PERF_FLAG_FD_CLOEXEC,
            )
        };
        if fd >= 0 {
            return Ok(fd as i32);
        }
        let e = errno();
        let paranoid = paranoid_level()
            .map(|p| format!(" (perf_event_paranoid = {p})"))
            .unwrap_or_default();
        let why = match e {
            1 | 13 => format!(
                "perf_event_open({}) denied by kernel policy{paranoid}; \
                 needs perf_event_paranoid <= 2 or CAP_PERFMON",
                ev.label()
            ),
            2 => format!(
                "perf_event_open({}) reports no such event — this host/VM \
                 exposes no PMU{paranoid}",
                ev.label()
            ),
            19 | 95 => format!(
                "perf_event_open({}) unsupported here (errno {e})",
                ev.label()
            ),
            _ => format!(
                "perf_event_open({}) failed with errno {e}{paranoid}",
                ev.label()
            ),
        };
        Err(PmuStatus::Unavailable { reason: why })
    }

    /// Open the standard group; on success `fds[0]` is the leader.
    pub fn open_group() -> Result<Vec<i32>, PmuStatus> {
        let mut fds: Vec<i32> = Vec::with_capacity(super::PMU_EVENTS.len());
        for ev in super::PMU_EVENTS {
            let group_fd = fds.first().copied().unwrap_or(-1);
            match open_event(ev, group_fd) {
                Ok(fd) => fds.push(fd),
                Err(status) => {
                    close_all(&fds);
                    return Err(status);
                }
            }
        }
        Ok(fds)
    }

    pub fn close_all(fds: &[i32]) {
        for &fd in fds {
            unsafe {
                close(fd);
            }
        }
    }

    pub fn group_enable(leader: i32) {
        unsafe {
            ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
            ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        }
    }

    pub fn group_disable(leader: i32) {
        unsafe {
            ioctl(leader, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
        }
    }

    /// One `PERF_FORMAT_GROUP` read:
    /// `[nr, time_enabled, time_running, v_0 .. v_4]`.
    pub fn read_group(leader: i32) -> Option<[u64; 8]> {
        let mut buf = [0u64; 8];
        let want = std::mem::size_of_val(&buf);
        let got = unsafe { read(leader, buf.as_mut_ptr() as *mut u8, want) };
        if got as usize != want || buf[0] != super::PMU_EVENTS.len() as u64 {
            return None;
        }
        Some(buf)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::PmuStatus;

    pub fn open_group() -> Result<Vec<i32>, PmuStatus> {
        Err(PmuStatus::Unavailable {
            reason: "perf_event_open reader is Linux x86_64/aarch64 only".into(),
        })
    }

    pub fn close_all(_fds: &[i32]) {}
    pub fn group_enable(_leader: i32) {}
    pub fn group_disable(_leader: i32) {}
    pub fn read_group(_leader: i32) -> Option<[u64; 8]> {
        None
    }
}

/// The standard five-counter group attached to the calling thread.
/// Counters start **disabled**; bracket measured sections with
/// [`enable`](PmuGroup::enable)/[`read`](PmuGroup::read) (or leave the
/// group enabled and diff cumulative samples with
/// [`PmuSample::since`]). Dropping the group closes every fd.
#[derive(Debug)]
pub struct PmuGroup {
    /// `fds[0]` is the group leader.
    fds: Vec<i32>,
}

impl PmuGroup {
    /// Open the [`PMU_EVENTS`] group on this thread, or report exactly
    /// why the platform refuses.
    pub fn standard() -> Result<PmuGroup, PmuStatus> {
        sys::open_group().map(|fds| PmuGroup { fds })
    }

    /// Reset and start the whole group counting.
    pub fn enable(&self) {
        sys::group_enable(self.fds[0]);
    }

    /// Stop the whole group.
    pub fn disable(&self) {
        sys::group_disable(self.fds[0]);
    }

    /// The cumulative group sample, multiplex-scaled. `None` only if
    /// the kernel read fails (a closed or truncated group).
    pub fn read(&self) -> Option<PmuSample> {
        let buf = sys::read_group(self.fds[0])?;
        let (enabled, running) = (buf[1], buf[2]);
        // Multiplex scaling: the kernel time-slices over-committed
        // PMUs; scale each value to estimate the full enabled window.
        let scale = |v: u64| -> u64 {
            if running == 0 || running >= enabled {
                v
            } else {
                (v as f64 * (enabled as f64 / running as f64)).round() as u64
            }
        };
        Some(PmuSample {
            l1d_miss: scale(buf[3]),
            llc_miss: scale(buf[4]),
            dtlb_miss: scale(buf[5]),
            instructions: scale(buf[6]),
            cycles: scale(buf[7]),
            time_enabled_ns: enabled,
            time_running_ns: running,
        })
    }
}

impl Drop for PmuGroup {
    fn drop(&mut self) {
        sys::close_all(&self.fds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The visible-skip convention of the PMU suites: availability is
    /// environmental, so a skipped assertion must *say* it skipped
    /// (stdout survives `--nocapture`-less runs via the test summary;
    /// stderr shows under `-- --nocapture` and in CI logs).
    fn skip(test: &str, status: &PmuStatus) {
        eprintln!("SKIPPED {test}: pmu {status}");
        println!("SKIPPED {test}: pmu {status}");
    }

    #[test]
    fn status_is_available_or_carries_a_reason() {
        match pmu_status() {
            PmuStatus::Available => {
                let g = PmuGroup::standard().expect("status said available");
                g.enable();
                let s = g.read().expect("group read");
                assert!(s.time_enabled_ns > 0 || s.cycles == 0);
            }
            PmuStatus::Unavailable { reason } => {
                assert!(!reason.is_empty());
                // The fallback is honest, not a panic: the constructor
                // agrees with the probe.
                assert!(PmuGroup::standard().is_err());
            }
        }
    }

    #[test]
    fn sample_diff_is_saturating_and_fieldwise() {
        let a = PmuSample {
            l1d_miss: 10,
            llc_miss: 5,
            dtlb_miss: 2,
            instructions: 1000,
            cycles: 2000,
            time_enabled_ns: 50,
            time_running_ns: 50,
        };
        let b = PmuSample {
            l1d_miss: 4,
            llc_miss: 7, // counter reset between reads: saturates to 0
            ..a
        };
        let d = a.since(&b);
        assert_eq!(d.l1d_miss, 6);
        assert_eq!(d.llc_miss, 0);
        assert_eq!(d.instructions, 0);
        assert!(a.fully_scheduled());
        assert_eq!(a.level_misses(), [("L1d", 10), ("LLC", 5), ("dTLB", 2)]);
    }

    #[test]
    fn counting_work_moves_the_counters() {
        let g = match PmuGroup::standard() {
            Ok(g) => g,
            Err(s) => {
                skip("counting_work_moves_the_counters", &s);
                return;
            }
        };
        g.enable();
        let before = g.read().expect("read");
        let mut acc = 0u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(acc);
        let after = g.read().expect("read");
        let d = after.since(&before);
        assert!(
            d.instructions > 100_000,
            "100k-iteration loop must retire >100k instructions, got {}",
            d.instructions
        );
        assert!(d.cycles > 0);
        assert!(d.time_enabled_ns > 0);
    }

    /// The scoping contract: a loop touching `N` distinct cache lines
    /// in an L1-defeating (shuffled) order must measure L1D misses
    /// within a documented factor of `N`. The bound is deliberately
    /// loose — hardware prefetchers hide some misses, multiplex
    /// scaling adds noise — but it pins that the counters are scoped
    /// to *this* section's memory traffic, not to some unrelated
    /// window: a 16× band still cleanly separates `N = 65536` touched
    /// lines from both zero and from whole-program noise.
    #[test]
    fn scoped_l1d_misses_track_a_known_line_count() {
        const LINE: usize = 64;
        const N: usize = 1 << 16; // 4 MiB of lines: far beyond any L1
        let g = match PmuGroup::standard() {
            Ok(g) => g,
            Err(s) => {
                skip("scoped_l1d_misses_track_a_known_line_count", &s);
                return;
            }
        };
        let buf = vec![1u8; N * LINE];
        // Visit lines in a stride pattern coprime to N so sequential
        // prefetch cannot stream ahead of the loads.
        let stride = 9973usize; // prime, and N is a power of two
        g.enable();
        let before = g.read().expect("read");
        let mut acc = 0u64;
        let mut idx = 0usize;
        for _ in 0..N {
            acc = acc.wrapping_add(buf[idx * LINE] as u64);
            idx = (idx + stride) & (N - 1);
        }
        std::hint::black_box(acc);
        let after = g.read().expect("read");
        let d = after.since(&before);
        let n = N as u64;
        assert!(
            d.l1d_miss >= n / 16 && d.l1d_miss <= n * 16,
            "touched {n} distinct lines, measured {} L1D misses — \
             outside the documented [N/16, 16N] scoping band",
            d.l1d_miss
        );
    }

    #[test]
    fn paranoid_level_parses_when_the_file_exists() {
        // On Linux the knob exists and parses; elsewhere None is fine.
        if std::path::Path::new("/proc/sys/kernel/perf_event_paranoid").exists() {
            assert!(paranoid_level().is_some());
        }
    }
}
