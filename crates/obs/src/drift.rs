//! Model-drift monitor: notices when calibration has gone stale.
//!
//! The cost model's whole value is that prediction tracks measurement
//! (Eq 6.1: `T = T_mem + T_cpu` on calibrated parameters). This
//! monitor closes that loop: every executed query feeds its
//! `(measured, predicted)` pair in, keyed by operator class, and the
//! monitor keeps an EWMA of `log2(measured / predicted)` per class.
//! Working in log space makes over- and under-prediction symmetric —
//! a stable 4× miss in either direction pushes the EWMA toward ±2 —
//! and makes "drift by more than a factor F" a simple threshold:
//! `|ewma| > log2(F)`. When any class crosses it after a minimum
//! sample count, [`DriftMonitor::needs_recalibration`] flips, telling
//! the operator to re-run the calibrator on this host.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Drift state for one operator class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDrift {
    /// EWMA of `log2(measured / predicted)`.
    pub ewma_log2: f64,
    /// Samples observed.
    pub samples: u64,
}

impl ClassDrift {
    /// The smoothed measured/predicted ratio (1.0 = calibrated).
    pub fn ratio(&self) -> f64 {
        self.ewma_log2.exp2()
    }
}

/// Per-operator-class EWMA drift tracker. Thread-safe; shared by
/// reference from the service layer.
#[derive(Debug)]
pub struct DriftMonitor {
    alpha: f64,
    threshold_log2: f64,
    min_samples: u64,
    classes: Mutex<BTreeMap<String, ClassDrift>>,
}

/// Smoothing factor: each new sample contributes 25%, so a sustained
/// shift dominates after ~8 samples while a single moderate outlier
/// (under ~16×) cannot trip the flag on its own.
pub const DEFAULT_ALPHA: f64 = 0.25;
/// Flag when the smoothed ratio leaves `[1/2, 2]`.
pub const DEFAULT_THRESHOLD: f64 = 2.0;
/// Ignore classes with fewer samples than this.
pub const DEFAULT_MIN_SAMPLES: u64 = 8;

impl Default for DriftMonitor {
    fn default() -> Self {
        DriftMonitor::new()
    }
}

impl DriftMonitor {
    /// A monitor with the default alpha/threshold/min-samples.
    pub fn new() -> DriftMonitor {
        DriftMonitor::with_params(DEFAULT_ALPHA, DEFAULT_THRESHOLD, DEFAULT_MIN_SAMPLES)
    }

    /// A monitor flagging when the smoothed measured/predicted ratio
    /// leaves `[1/threshold, threshold]` after `min_samples`
    /// observations of a class.
    pub fn with_params(alpha: f64, threshold: f64, min_samples: u64) -> DriftMonitor {
        DriftMonitor {
            alpha: alpha.clamp(0.0, 1.0),
            threshold_log2: threshold.max(1.0).log2(),
            min_samples: min_samples.max(1),
            classes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Feed one `(measured, predicted)` pair for an operator class.
    /// Non-positive or non-finite inputs are ignored (a zero-cost
    /// prediction says nothing about calibration).
    pub fn observe(&self, class: &str, measured_ns: f64, predicted_ns: f64) {
        let usable = measured_ns > 0.0
            && predicted_ns > 0.0
            && measured_ns.is_finite()
            && predicted_ns.is_finite();
        if !usable {
            return;
        }
        let sample = (measured_ns / predicted_ns).log2();
        let mut classes = self.classes.lock().unwrap();
        let entry = classes.entry(class.to_string()).or_insert(ClassDrift {
            ewma_log2: 0.0,
            samples: 0,
        });
        if entry.samples == 0 {
            entry.ewma_log2 = sample;
        } else {
            entry.ewma_log2 += self.alpha * (sample - entry.ewma_log2);
        }
        entry.samples += 1;
    }

    /// Snapshot of every class's drift state.
    pub fn status(&self) -> BTreeMap<String, ClassDrift> {
        self.classes.lock().unwrap().clone()
    }

    /// The smoothed measured/predicted ratio for one class, if seen.
    pub fn ratio(&self, class: &str) -> Option<f64> {
        self.classes.lock().unwrap().get(class).map(|c| c.ratio())
    }

    fn is_stale(&self, d: &ClassDrift) -> bool {
        d.samples >= self.min_samples && d.ewma_log2.abs() > self.threshold_log2
    }

    /// Classes whose smoothed ratio has crossed the threshold.
    pub fn stale_classes(&self) -> Vec<String> {
        self.classes
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, d)| self.is_stale(d))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// The recalibration flag: true when any class has drifted past
    /// the threshold.
    pub fn needs_recalibration(&self) -> bool {
        self.classes
            .lock()
            .unwrap()
            .values()
            .any(|d| self.is_stale(d))
    }

    /// Reset all state (e.g. after re-running the calibrator).
    pub fn reset(&self) {
        self.classes.lock().unwrap().clear();
    }

    /// Mirror the monitor into a [`MetricsRegistry`](crate::MetricsRegistry):
    /// one `{prefix}_ratio{class="…"}` gauge per observed class (the
    /// smoothed measured/predicted ratio), `{prefix}_stale_classes`
    /// (how many crossed the threshold), and `{prefix}_flag` (0/1).
    /// Class names go through [`labeled`](crate::registry::labeled) so
    /// arbitrary operator-class strings survive the exporters.
    pub fn export_gauges(&self, registry: &crate::MetricsRegistry, prefix: &str) {
        let classes = self.classes.lock().unwrap();
        let mut stale = 0u64;
        for (name, d) in classes.iter() {
            if self.is_stale(d) {
                stale += 1;
            }
            registry.set_gauge(
                &crate::registry::labeled(&format!("{prefix}_ratio"), &[("class", name)]),
                d.ratio(),
            );
        }
        registry.set_gauge(&format!("{prefix}_stale_classes"), stale as f64);
        registry.set_gauge(&format!("{prefix}_flag"), if stale > 0 { 1.0 } else { 0.0 });
    }

    /// The monitor as one JSON object: flag, stale classes, and every
    /// class's smoothed ratio.
    pub fn to_json(&self) -> String {
        let classes = self.classes.lock().unwrap();
        let mut rows = crate::json::Arr::new();
        for (name, d) in classes.iter() {
            let mut o = crate::json::Obj::new();
            o.str("class", name)
                .num("ratio", d.ratio())
                .num("ewma_log2", d.ewma_log2)
                .u64("samples", d.samples)
                .bool("stale", self.is_stale(d));
            rows.raw(&o.finish());
        }
        let any_stale = classes.values().any(|d| self.is_stale(d));
        let mut o = crate::json::Obj::new();
        o.bool("needs_recalibration", any_stale)
            .raw("classes", &rows.finish());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_never_flags() {
        let m = DriftMonitor::new();
        for i in 0..100 {
            // Noise within ±30% of the prediction.
            let jitter = 1.0 + 0.3 * if i % 2 == 0 { 1.0 } else { -1.0 };
            m.observe("scan", 1000.0 * jitter, 1000.0);
        }
        assert!(!m.needs_recalibration());
        let r = m.ratio("scan").unwrap();
        assert!((0.5..2.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn four_x_miscalibration_flags_after_min_samples() {
        let m = DriftMonitor::new();
        for i in 0..DEFAULT_MIN_SAMPLES {
            m.observe("sort", 4000.0, 1000.0);
            if i + 1 < DEFAULT_MIN_SAMPLES {
                assert!(!m.needs_recalibration(), "flagged too early at {i}");
            }
        }
        assert!(m.needs_recalibration());
        assert_eq!(m.stale_classes(), vec!["sort".to_string()]);
        let r = m.ratio("sort").unwrap();
        assert!((r - 4.0).abs() < 0.5, "ratio {r}");
    }

    #[test]
    fn underprediction_and_overprediction_are_symmetric() {
        let over = DriftMonitor::new();
        let under = DriftMonitor::new();
        for _ in 0..20 {
            over.observe("join", 4000.0, 1000.0);
            under.observe("join", 1000.0, 4000.0);
        }
        assert!(over.needs_recalibration());
        assert!(under.needs_recalibration());
    }

    #[test]
    fn one_outlier_does_not_flag() {
        let m = DriftMonitor::new();
        for _ in 0..20 {
            m.observe("scan", 1000.0, 1000.0);
        }
        m.observe("scan", 10_000.0, 1000.0);
        assert!(!m.needs_recalibration());
    }

    #[test]
    fn garbage_inputs_are_ignored() {
        let m = DriftMonitor::new();
        m.observe("x", 0.0, 1.0);
        m.observe("x", 1.0, 0.0);
        m.observe("x", f64::NAN, 1.0);
        m.observe("x", 1.0, f64::INFINITY);
        assert!(m.status().is_empty());
    }

    #[test]
    fn reset_clears_the_flag() {
        let m = DriftMonitor::new();
        for _ in 0..10 {
            m.observe("scan", 8000.0, 1000.0);
        }
        assert!(m.needs_recalibration());
        m.reset();
        assert!(!m.needs_recalibration());
        assert!(m.status().is_empty());
    }

    #[test]
    fn export_gauges_mirrors_ratios_into_a_registry() {
        let m = DriftMonitor::new();
        for _ in 0..10 {
            m.observe("sort", 4000.0, 1000.0);
            m.observe("scan", 1000.0, 1000.0);
        }
        let r = crate::MetricsRegistry::new();
        m.export_gauges(&r, "svc_drift");
        let sort = r.gauge("svc_drift_ratio{class=\"sort\"}").unwrap();
        assert!((sort - 4.0).abs() < 0.5, "ratio {sort}");
        let scan = r.gauge("svc_drift_ratio{class=\"scan\"}").unwrap();
        assert!((scan - 1.0).abs() < 0.1, "ratio {scan}");
        assert_eq!(r.gauge("svc_drift_stale_classes"), Some(1.0));
        assert_eq!(r.gauge("svc_drift_flag"), Some(1.0));
        // The ratios appear in the Prometheus export, per class.
        let text = r.to_prometheus();
        assert!(text.contains("svc_drift_ratio{class=\"sort\"}"), "{text}");
    }

    #[test]
    fn json_reports_flag_and_classes() {
        let m = DriftMonitor::new();
        for _ in 0..10 {
            m.observe("sort", 4000.0, 1000.0);
        }
        let json = m.to_json();
        assert!(json.contains("\"needs_recalibration\":true"), "{json}");
        assert!(json.contains("\"class\":\"sort\""), "{json}");
        assert!(json.contains("\"stale\":true"), "{json}");
    }
}
