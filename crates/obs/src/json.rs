//! A minimal JSON writer — the one serialization surface every exporter
//! in this workspace shares (metrics, calibration reports, bench
//! trajectories, `EXPLAIN ANALYZE`).
//!
//! The workspace builds fully offline (no serde); this module is the
//! small, dependency-free subset actually needed: objects, arrays,
//! strings with escaping, and numbers formatted so they round-trip
//! (integers without a fraction, floats with enough digits and never
//! `NaN`/`inf` — those become `null`, which any reader treats as
//! "not measured").

/// Escape `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number: integers lose the fraction, other
/// finite values keep enough digits to be useful, and non-finite
/// values become `null` (JSON has no `NaN`).
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Incremental JSON object builder.
///
/// ```
/// use gcm_obs::json::Obj;
/// let mut o = Obj::new();
/// o.str("name", "scan").u64("rows", 42).num("ns", 1.5);
/// assert_eq!(o.finish(), r#"{"name":"scan","rows":42,"ns":1.500}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Obj {
        let e = escape(v);
        let b = self.key(k);
        b.push('"');
        b.push_str(&e);
        b.push('"');
        self
    }

    /// Add an integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Obj {
        let s = v.to_string();
        self.key(k).push_str(&s);
        self
    }

    /// Add a float field (see [`num`] for the formatting contract).
    pub fn num(&mut self, k: &str, v: f64) -> &mut Obj {
        let s = num(v);
        self.key(k).push_str(&s);
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Obj {
        let s = if v { "true" } else { "false" };
        self.key(k).push_str(s);
        self
    }

    /// Add a pre-serialized JSON value (nested object/array).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Obj {
        let v = v.to_string();
        self.key(k).push_str(&v);
        self
    }

    /// Close the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental JSON array builder (elements are pre-serialized values).
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
}

impl Arr {
    /// An empty array.
    pub fn new() -> Arr {
        Arr { buf: String::new() }
    }

    /// Append a pre-serialized JSON value.
    pub fn raw(&mut self, v: &str) -> &mut Arr {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(v);
        self
    }

    /// Append a string element.
    pub fn str(&mut self, v: &str) -> &mut Arr {
        let e = format!("\"{}\"", escape(v));
        self.raw(&e)
    }

    /// Append a float element.
    pub fn num(&mut self, v: f64) -> &mut Arr {
        let s = num(v);
        self.raw(&s)
    }

    /// Close the array.
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_round_sensibly() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.25), "3.250");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(-2.0), "-2");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let mut inner = Obj::new();
        inner.str("class", "scan").u64("count", 3);
        let mut arr = Arr::new();
        arr.raw(&inner.finish()).num(1.5).str("x");
        let mut o = Obj::new();
        o.bool("ok", true).raw("rows", &arr.finish());
        assert_eq!(
            o.finish(),
            r#"{"ok":true,"rows":[{"class":"scan","count":3},1.500,"x"]}"#
        );
    }

    #[test]
    fn empty_builders() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }
}
