//! Log-linear latency histograms with bounded relative error.
//!
//! The classic HDR layout: values below 2^`SUB_BITS` get exact unit
//! buckets; above that, each power-of-two range is split into
//! 2^`SUB_BITS` linear sub-buckets, so a bucket's width is at most
//! `value / 2^SUB_BITS` and a quantile read off the bucket midpoint is
//! within `1 / 2^(SUB_BITS+1)` (≈ 1.6%) of the true rank value. That
//! bound is what lets a service report p50/p99/p999 from a fixed
//! 16 KiB array instead of keeping every latency sample
//! (the ad-hoc `Vec<QueryRecord>` approach this replaces can only
//! answer percentile queries by sorting everything it ever saw).

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Worst-case relative error of a quantile estimate (midpoint of a
/// log-linear bucket): half a sub-bucket width.
pub const QUANTILE_REL_ERROR: f64 = 1.0 / (1 << (SUB_BITS + 1)) as f64;

/// A fixed-footprint log-linear histogram of `u64` samples
/// (nanoseconds, by convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // v ∈ [2^e, 2^(e+1)), e ≥ SUB_BITS
    let sub = (v >> (e - SUB_BITS)) - SUB; // 0..SUB
    ((e - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

/// Midpoint of a bucket — the representative value a quantile query
/// returns.
fn representative(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < 2 * SUB {
        return idx; // unit-width buckets are exact
    }
    let block = idx >> SUB_BITS; // = e - SUB_BITS + 1 ≥ 2
    let e = block + SUB_BITS as u64 - 1;
    let sub = idx & (SUB - 1);
    let lower = (SUB + sub) << (e - SUB_BITS as u64);
    let width = 1u64 << (e - SUB_BITS as u64);
    lower + width / 2
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a float sample (rounded; negatives and non-finite clamp
    /// to 0).
    pub fn record_ns(&mut self, v: f64) {
        let v = if v.is_finite() {
            v.max(0.0).round()
        } else {
            0.0
        };
        self.record(v as u64);
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q ∈ [0, 1]` — the representative of the
    /// bucket holding the sample of rank `⌈q·count⌉` (rank 1 = min).
    /// Within [`QUANTILE_REL_ERROR`] of the exact order statistic,
    /// clamped to the observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return representative(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The histogram as one JSON object (the exporter row shared by
    /// metrics dumps and bench trajectories).
    pub fn to_json(&self) -> String {
        let mut o = crate::json::Obj::new();
        o.u64("count", self.count)
            .num("sum", self.sum)
            .num("mean", self.mean())
            .u64("min", self.min())
            .u64("max", self.max())
            .u64("p50", self.p50())
            .u64("p99", self.p99())
            .u64("p999", self.p999());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 31, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        // Unit buckets below 2·SUB: the median is exactly 5.
        assert_eq!(h.p50(), 5);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        // A deterministic heavy-tailed-ish sequence.
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 40) * ((x >> 60) + 1); // up to ~2^28
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1] as f64;
            let est = h.quantile(q) as f64;
            let tol = truth * 2.0 * QUANTILE_REL_ERROR + 1.0;
            assert!(
                (est - truth).abs() <= tol,
                "q={q}: est {est} vs exact {truth} (tol {tol})"
            );
        }
    }

    #[test]
    fn merge_is_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            all.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        let json = h.to_json();
        assert!(json.contains("\"count\":0"), "{json}");
    }

    #[test]
    fn record_ns_clamps_garbage() {
        let mut h = Histogram::new();
        h.record_ns(-5.0);
        h.record_ns(f64::NAN);
        h.record_ns(1.6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 2);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        // For every representable magnitude, the representative of a
        // value's bucket stays within the documented relative error.
        let mut v = 1u64;
        while v < (1 << 40) {
            for probe in [v, v + v / 3, v + v / 2] {
                let rep = representative(bucket_of(probe)) as f64;
                let err = (rep - probe as f64).abs() / probe as f64;
                assert!(
                    err <= 2.0 * QUANTILE_REL_ERROR + 1e-9,
                    "v={probe} rep={rep} err={err}"
                );
            }
            v *= 2;
        }
    }
}
