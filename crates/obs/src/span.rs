//! Low-overhead span tracing.
//!
//! Each writer thread owns a [`SpanSink`] — a single-producer handle to
//! its own fixed-size ring (`Lane`) registered with the shared
//! [`SpanRecorder`]. Recording a span is a handful of relaxed/release
//! atomics on the writer's own lane; no writer ever touches another
//! writer's lane, so there is no cross-thread contention on the hot
//! path. A drain (the single consumer, serialized by the recorder's
//! lane-registry mutex) harvests completed spans from every lane.
//!
//! When a lane is full the span is *dropped and counted* rather than
//! blocking the traced work — the `dropped` counter makes truncation
//! visible, mirroring how `MissTrace` reports its own overflow.
//!
//! Two off switches, with different costs:
//! - runtime: [`SpanRecorder::set_enabled`]`(false)` — one relaxed
//!   atomic load per span (the `tracing_overhead` bench guards this);
//! - compile time: build without the `span-tracing` feature — `record`
//!   becomes an empty inline function and drains return nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What phase of the pipeline a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Plan enumeration + costing in the optimizer.
    Optimize,
    /// Batch admission (concurrency-aware batch costing).
    Admission,
    /// Hash-table build (shared build cache population).
    Build,
    /// One physical plan node's execution.
    Execute,
    /// One worker thread's share of a parallel operator.
    Worker,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Stable lowercase label (used in exports and metric names).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Optimize => "optimize",
            SpanKind::Admission => "admission",
            SpanKind::Build => "build",
            SpanKind::Execute => "execute",
            SpanKind::Worker => "worker",
            SpanKind::Other => "other",
        }
    }
}

/// One completed span: a named interval with the backend counter
/// deltas observed across it.
#[derive(Debug, Clone)]
pub struct Span {
    /// Node / phase label, e.g. `"join[hash]"`.
    pub name: String,
    /// Pipeline phase.
    pub kind: SpanKind,
    /// Start offset from the recorder's epoch, wall nanoseconds.
    pub start_ns: u64,
    /// End offset from the recorder's epoch, wall nanoseconds.
    pub end_ns: u64,
    /// Backend-reported elapsed time for the interval: charged ns on
    /// the sim backend, wall ns on native. 0 when no backend interval
    /// was attached.
    pub elapsed_ns: f64,
    /// Charged accesses across the interval (sim backend; 0 elsewhere).
    pub accesses: u64,
    /// Per-cache-level `(name, misses)` across the interval (sim
    /// backend; empty on native).
    pub level_misses: Vec<(String, u64)>,
    /// Logical operations attributed to the span.
    pub ops: u64,
    /// Which lane (writer registration order) recorded the span.
    pub lane: usize,
    /// Per-lane sequence number; `(lane, seq)` is unique.
    pub seq: u64,
}

impl Span {
    /// The span as one JSON object (a JSON-lines row).
    pub fn to_json(&self) -> String {
        let mut levels = crate::json::Arr::new();
        for (name, misses) in &self.level_misses {
            let mut o = crate::json::Obj::new();
            o.str("level", name).u64("misses", *misses);
            levels.raw(&o.finish());
        }
        let mut o = crate::json::Obj::new();
        o.str("name", &self.name)
            .str("kind", self.kind.label())
            .u64("start_ns", self.start_ns)
            .u64("end_ns", self.end_ns)
            .num("elapsed_ns", self.elapsed_ns)
            .u64("accesses", self.accesses)
            .raw("level_misses", &levels.finish())
            .u64("ops", self.ops)
            .u64("lane", self.lane as u64)
            .u64("seq", self.seq);
        o.finish()
    }
}

#[cfg(feature = "span-tracing")]
mod ring {
    use super::*;
    use std::cell::UnsafeCell;

    /// A single-producer / single-consumer ring of spans. The producer
    /// is the owning [`SpanSink`]; the consumer is whoever holds the
    /// recorder's lane-registry lock.
    pub(super) struct Lane {
        slots: Box<[UnsafeCell<Option<Span>>]>,
        /// Next slot the producer writes. Only the producer stores it.
        head: AtomicUsize,
        /// Next slot the consumer reads. Only the consumer stores it.
        tail: AtomicUsize,
        pub(super) dropped: AtomicU64,
    }

    // The slot array is shared between exactly one producer and one
    // consumer, and each slot is touched only in the half-open window
    // its owner has claimed via the head/tail protocol below.
    unsafe impl Sync for Lane {}

    impl Lane {
        pub(super) fn new(capacity: usize) -> Lane {
            let slots = (0..capacity.max(1))
                .map(|_| UnsafeCell::new(None))
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Lane {
                slots,
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            }
        }

        /// Producer side. Returns `false` (and counts a drop) when the
        /// ring is full.
        pub(super) fn push(&self, span: Span) -> bool {
            let head = self.head.load(Ordering::Relaxed); // own index
            let tail = self.tail.load(Ordering::Acquire);
            if head.wrapping_sub(tail) >= self.slots.len() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            let slot = &self.slots[head % self.slots.len()];
            // Safety: slots in [tail, head) belong to the consumer;
            // slot `head` is outside that window until the Release
            // store below publishes it.
            unsafe { *slot.get() = Some(span) };
            self.head.store(head.wrapping_add(1), Ordering::Release);
            true
        }

        /// Consumer side: take every completed span currently in the
        /// ring.
        pub(super) fn drain_into(&self, out: &mut Vec<Span>) {
            let mut tail = self.tail.load(Ordering::Relaxed); // own index
            let head = self.head.load(Ordering::Acquire);
            while tail != head {
                let slot = &self.slots[tail % self.slots.len()];
                // Safety: [tail, head) was published by the producer's
                // Release store and is ours until tail is advanced.
                if let Some(span) = unsafe { (*slot.get()).take() } {
                    out.push(span);
                }
                tail = tail.wrapping_add(1);
                self.tail.store(tail, Ordering::Release);
            }
        }
    }
}

#[cfg(feature = "span-tracing")]
struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    lanes: Mutex<Vec<Arc<ring::Lane>>>,
    /// Monotonic lane-id source: ids stay unique even after [`drain`]
    /// reclaims abandoned lanes ([`SpanRecorder::drain`]).
    next_lane: AtomicU64,
    /// Drop counts carried over from reclaimed lanes, so
    /// [`SpanRecorder::dropped`] never under-reports.
    reclaimed_dropped: AtomicU64,
}

#[cfg(not(feature = "span-tracing"))]
struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
}

/// Shared handle to the trace: hands out per-thread [`SpanSink`]s and
/// drains them. Cheap to clone (an `Arc`).
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

/// Default per-lane capacity: enough for every node of a large batch
/// without drops, small enough (~tens of KiB) to sit in every worker.
pub const DEFAULT_LANE_CAPACITY: usize = 4096;

impl SpanRecorder {
    /// A recorder with [`DEFAULT_LANE_CAPACITY`] slots per lane,
    /// enabled.
    pub fn new() -> SpanRecorder {
        SpanRecorder::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A recorder whose lanes hold `capacity` spans each.
    #[cfg(feature = "span-tracing")]
    pub fn with_capacity(capacity: usize) -> SpanRecorder {
        SpanRecorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                epoch: Instant::now(),
                capacity: capacity.max(1),
                lanes: Mutex::new(Vec::new()),
                next_lane: AtomicU64::new(0),
                reclaimed_dropped: AtomicU64::new(0),
            }),
        }
    }

    /// A recorder whose lanes hold `capacity` spans each.
    #[cfg(not(feature = "span-tracing"))]
    pub fn with_capacity(_capacity: usize) -> SpanRecorder {
        SpanRecorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                epoch: Instant::now(),
            }),
        }
    }

    /// Turn recording on or off at runtime. Off costs one relaxed
    /// atomic load per would-be span.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder was created — the timebase for
    /// [`Span::start_ns`] / [`Span::end_ns`].
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Register a new lane and return its single-producer sink. Each
    /// writer thread gets its own.
    #[cfg(feature = "span-tracing")]
    pub fn sink(&self) -> SpanSink {
        let lane = Arc::new(ring::Lane::new(self.inner.capacity));
        let mut lanes = self.inner.lanes.lock().unwrap();
        lanes.push(Arc::clone(&lane));
        SpanSink {
            recorder: self.clone(),
            lane,
            lane_idx: self.inner.next_lane.fetch_add(1, Ordering::Relaxed) as usize,
            seq: 0,
        }
    }

    /// Register a new lane and return its single-producer sink. Each
    /// writer thread gets its own.
    #[cfg(not(feature = "span-tracing"))]
    pub fn sink(&self) -> SpanSink {
        SpanSink {
            recorder: self.clone(),
        }
    }

    /// Harvest every completed span from every lane, in lane order.
    /// The lane-registry lock makes this the single consumer. Lanes
    /// whose producer sink has been dropped are reclaimed after
    /// draining (new producers always get fresh lanes, so a lane held
    /// only by the registry can never fill again) — a long-running
    /// service that hands a sink to every batch worker stays at
    /// O(live writers) memory instead of O(all writers ever).
    #[cfg(feature = "span-tracing")]
    pub fn drain(&self) -> Vec<Span> {
        let mut lanes = self.inner.lanes.lock().unwrap();
        let mut out = Vec::new();
        for lane in lanes.iter() {
            lane.drain_into(&mut out);
        }
        lanes.retain(|lane| {
            if Arc::strong_count(lane) > 1 {
                return true;
            }
            self.inner
                .reclaimed_dropped
                .fetch_add(lane.dropped.load(Ordering::Relaxed), Ordering::Relaxed);
            false
        });
        out
    }

    /// Harvest every completed span from every lane, in lane order.
    #[cfg(not(feature = "span-tracing"))]
    pub fn drain(&self) -> Vec<Span> {
        Vec::new()
    }

    /// Total spans dropped across all lanes because a ring was full.
    #[cfg(feature = "span-tracing")]
    pub fn dropped(&self) -> u64 {
        let lanes = self.inner.lanes.lock().unwrap();
        self.inner.reclaimed_dropped.load(Ordering::Relaxed)
            + lanes
                .iter()
                .map(|l| l.dropped.load(Ordering::Relaxed))
                .sum::<u64>()
    }

    /// Total spans dropped across all lanes because a ring was full.
    #[cfg(not(feature = "span-tracing"))]
    pub fn dropped(&self) -> u64 {
        0
    }
}

/// A single writer thread's handle into the trace. Not `Clone`: one
/// sink per lane is the invariant the lock-free ring relies on. `Send`
/// so worker threads can carry theirs across a spawn.
pub struct SpanSink {
    recorder: SpanRecorder,
    #[cfg(feature = "span-tracing")]
    lane: Arc<ring::Lane>,
    #[cfg(feature = "span-tracing")]
    lane_idx: usize,
    #[cfg(feature = "span-tracing")]
    seq: u64,
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink").finish()
    }
}

impl SpanSink {
    /// Whether a record call would actually store a span. Callers use
    /// this to skip collecting counter deltas when tracing is off.
    pub fn active(&self) -> bool {
        cfg!(feature = "span-tracing") && self.recorder.enabled()
    }

    /// Nanoseconds since the recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.recorder.now_ns()
    }

    /// Record one completed span. `lane` and `seq` are filled in here.
    #[cfg(feature = "span-tracing")]
    pub fn record(&mut self, mut span: Span) {
        if !self.recorder.enabled() {
            return;
        }
        span.lane = self.lane_idx;
        span.seq = self.seq;
        self.seq += 1;
        self.lane.push(span);
    }

    /// Record one completed span (compiled out).
    #[cfg(not(feature = "span-tracing"))]
    #[inline(always)]
    pub fn record(&mut self, _span: Span) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str) -> Span {
        Span {
            name: name.into(),
            kind: SpanKind::Other,
            start_ns: 1,
            end_ns: 2,
            elapsed_ns: 1.0,
            accesses: 0,
            level_misses: Vec::new(),
            ops: 0,
            lane: 0,
            seq: 0,
        }
    }

    #[test]
    #[cfg(feature = "span-tracing")]
    fn record_and_drain_roundtrip() {
        let rec = SpanRecorder::with_capacity(8);
        let mut sink = rec.sink();
        sink.record(span("a"));
        sink.record(span("b"));
        let spans = rec.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].seq, 0);
        assert_eq!(spans[1].seq, 1);
        assert!(rec.drain().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    #[cfg(feature = "span-tracing")]
    fn drain_reclaims_abandoned_lanes_and_keeps_drop_counts() {
        let rec = SpanRecorder::with_capacity(2);
        for i in 0..10 {
            let mut sink = rec.sink();
            sink.record(span("kept"));
            sink.record(span("kept"));
            sink.record(span("overflow")); // lane full: dropped
            drop(sink); // producer gone: the sweep may reclaim the lane
            assert_eq!(rec.drain().len(), 2, "round {i}");
        }
        // Every per-round sink is gone; its lane must be too.
        assert_eq!(rec.inner.lanes.lock().unwrap().len(), 0);
        assert_eq!(rec.dropped(), 10, "reclaimed lanes keep their drops");
        // A live sink's lane survives the sweep, with fresh lane ids.
        let mut live = rec.sink();
        live.record(span("live"));
        let spans = rec.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lane, 10, "lane ids stay unique after GC");
        assert_eq!(rec.inner.lanes.lock().unwrap().len(), 1);
    }

    #[test]
    #[cfg(feature = "span-tracing")]
    fn full_lane_counts_drops() {
        let rec = SpanRecorder::with_capacity(2);
        let mut sink = rec.sink();
        for _ in 0..5 {
            sink.record(span("x"));
        }
        assert_eq!(rec.drain().len(), 2);
        assert_eq!(rec.dropped(), 3);
        // After a drain the lane has room again.
        sink.record(span("y"));
        assert_eq!(rec.drain().len(), 1);
    }

    #[test]
    #[cfg(feature = "span-tracing")]
    fn disabled_recorder_stores_nothing() {
        let rec = SpanRecorder::new();
        rec.set_enabled(false);
        let mut sink = rec.sink();
        assert!(!sink.active());
        sink.record(span("a"));
        assert!(rec.drain().is_empty());
        rec.set_enabled(true);
        assert!(sink.active());
        sink.record(span("b"));
        assert_eq!(rec.drain().len(), 1);
    }

    #[test]
    #[cfg(not(feature = "span-tracing"))]
    fn compiled_out_recorder_is_inert() {
        let rec = SpanRecorder::new();
        let mut sink = rec.sink();
        assert!(!sink.active());
        sink.record(span("a"));
        assert!(rec.drain().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn span_json_has_core_fields() {
        let mut s = span("scan");
        s.level_misses.push(("L1".into(), 4));
        let json = s.to_json();
        assert!(json.contains("\"name\":\"scan\""), "{json}");
        assert!(json.contains("\"kind\":\"other\""), "{json}");
        assert!(json.contains("\"level\":\"L1\""), "{json}");
    }
}
