//! # gcm-obs — the observability layer
//!
//! Instrumentation backbone for the cost-model workspace, built around
//! one idea from the paper: a calibrated model's predictions are only
//! trustworthy while measurement keeps agreeing with them, so the
//! serving stack must be able to (a) attribute measured cost to the
//! same plan nodes the model priced and (b) notice when the two
//! diverge.
//!
//! Four pieces, each usable on its own:
//!
//! - [`span`] — per-thread lock-free span recording with backend
//!   counter deltas (charged accesses and per-level misses on the sim
//!   backend, wall-ns on native); compiled to a no-op without the
//!   `span-tracing` feature.
//! - [`hist`] — log-linear histograms with bounded quantile error, the
//!   p50/p99/p999 story for service latency.
//! - [`registry`] — named counters / gauges / histograms with
//!   JSON-lines and Prometheus text exporters.
//! - [`drift`] — per-operator-class EWMA of measured/predicted ratios
//!   that raises a recalibration flag when calibration goes stale.
//! - [`pmu`] — hardware ground truth: a dependency-free
//!   `perf_event_open` reader (L1D/LLC/dTLB misses, instructions,
//!   cycles) with an honest `Unavailable` fallback where the kernel or
//!   platform forbids counting.
//! - [`flight`] — a bounded ring of recent `EXPLAIN ANALYZE` reports
//!   for post-hoc dumps.
//!
//! Plus [`json`], the dependency-free serializer the exporters (and
//! the calibration report, bench artifacts, and `EXPLAIN ANALYZE`
//! JSON) share.
//!
//! The crate is deliberately std-only so every other crate in the
//! workspace can depend on it without cycles or new dependencies.

pub mod drift;
pub mod flight;
pub mod hist;
pub mod json;
pub mod pmu;
pub mod registry;
pub mod span;

pub use drift::{ClassDrift, DriftMonitor};
pub use flight::{FlightEntry, FlightRecorder};
pub use hist::Histogram;
pub use pmu::{PmuGroup, PmuSample, PmuStatus};
pub use registry::{Metric, MetricsRegistry};
pub use span::{Span, SpanKind, SpanRecorder, SpanSink};
