//! Per-level access counters: the software equivalent of the R10000
//! hardware event counters used in the paper's §6.1.

use std::fmt;
use std::ops::Sub;

/// The `[HS89]` miss taxonomy referenced by the paper's §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to a line.
    Compulsory,
    /// Would also miss in a fully-associative cache of the same capacity.
    Capacity,
    /// Hits in the fully-associative shadow cache but misses in the real
    /// set-associative one: caused purely by address conflicts.
    Conflict,
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissClass::Compulsory => write!(f, "compulsory"),
            MissClass::Capacity => write!(f, "capacity"),
            MissClass::Conflict => write!(f, "conflict"),
        }
    }
}

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelStats {
    /// Total line-granular probes of this level.
    pub accesses: u64,
    /// Probes satisfied by this level.
    pub hits: u64,
    /// Misses whose line is adjacent to the previously missed line
    /// (the EDO-friendly stream of §2.2); charged sequential latency.
    pub seq_misses: u64,
    /// All other misses; charged random latency.
    pub rand_misses: u64,
    /// `[HS89]` classification (only populated when the memory system is
    /// built with classification enabled).
    pub compulsory: u64,
    /// See [`MissClass::Capacity`].
    pub capacity_misses: u64,
    /// See [`MissClass::Conflict`].
    pub conflict_misses: u64,
    /// Nanoseconds charged at this level (misses scored by latency).
    pub charged_ns: f64,
}

impl LevelStats {
    /// Total misses at this level.
    pub fn misses(&self) -> u64 {
        self.seq_misses + self.rand_misses
    }

    /// Miss rate in `[0, 1]`; zero when the level was never probed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Hit rate in `[0, 1]`; zero when the level was never probed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl Sub for LevelStats {
    type Output = LevelStats;

    /// Interval counters: `after - before`.
    fn sub(self, rhs: LevelStats) -> LevelStats {
        LevelStats {
            accesses: self.accesses - rhs.accesses,
            hits: self.hits - rhs.hits,
            seq_misses: self.seq_misses - rhs.seq_misses,
            rand_misses: self.rand_misses - rhs.rand_misses,
            compulsory: self.compulsory - rhs.compulsory,
            capacity_misses: self.capacity_misses - rhs.capacity_misses,
            conflict_misses: self.conflict_misses - rhs.conflict_misses,
            charged_ns: self.charged_ns - rhs.charged_ns,
        }
    }
}

impl fmt::Display for LevelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} seq_misses={} rand_misses={} ({}+{}+{} comp/cap/conf) charged={:.0} ns",
            self.accesses,
            self.hits,
            self.seq_misses,
            self.rand_misses,
            self.compulsory,
            self.capacity_misses,
            self.conflict_misses,
            self.charged_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = LevelStats {
            accesses: 10,
            hits: 7,
            seq_misses: 1,
            rand_misses: 2,
            ..Default::default()
        };
        assert_eq!(s.misses(), 3);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = LevelStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn interval_subtraction() {
        let before = LevelStats {
            accesses: 5,
            hits: 3,
            seq_misses: 1,
            rand_misses: 1,
            charged_ns: 10.0,
            ..Default::default()
        };
        let after = LevelStats {
            accesses: 15,
            hits: 9,
            seq_misses: 4,
            rand_misses: 2,
            charged_ns: 50.0,
            ..Default::default()
        };
        let d = after - before;
        assert_eq!(d.accesses, 10);
        assert_eq!(d.hits, 6);
        assert_eq!(d.seq_misses, 3);
        assert_eq!(d.rand_misses, 1);
        assert!((d.charged_ns - 40.0).abs() < 1e-12);
    }

    #[test]
    fn class_display() {
        assert_eq!(MissClass::Compulsory.to_string(), "compulsory");
        assert_eq!(MissClass::Conflict.to_string(), "conflict");
    }
}
