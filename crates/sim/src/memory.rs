//! The full simulated memory hierarchy.
//!
//! [`MemorySystem`] glues together an [`Arena`] (real backing bytes), one
//! [`SimCache`] per hardware level, per-level [`LevelStats`], and a
//! charged-latency clock. Every simulated access:
//!
//! 1. is split into chunks at the innermost cache's line granularity,
//! 2. probes the TLB once per chunk (page-granular),
//! 3. walks the data-cache chain inside-out, stopping at the first hit,
//! 4. charges each missed level its sequential or random miss latency
//!    (sequential = the missed line follows the previously missed line at
//!    that level, modelling EDO/prefetch streams, paper §2.2).
//!
//! The clock therefore realises the paper's Eq 3.1,
//! `T_mem = Σ_i (Ms_i·l_s,i + Mr_i·l_r,i)`, with the miss counts coming
//! from simulation instead of estimation — exactly the "measured" side of
//! the validation experiments in §6.

use crate::arena::Arena;
use crate::cache::{AccessOutcome, SimCache};
use crate::stats::{LevelStats, MissClass};
use crate::trace::{MissEvent, MissTrace};
use crate::Addr;
use gcm_hardware::{HardwareSpec, LevelKind};

/// A point-in-time copy of all counters, for interval measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Per-level counters, in the order of [`HardwareSpec::levels`].
    pub levels: Vec<LevelStats>,
    /// Charged memory time in nanoseconds.
    pub clock_ns: f64,
}

impl Snapshot {
    /// Interval counters: `self - earlier`.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            levels: self
                .levels
                .iter()
                .zip(&earlier.levels)
                .map(|(a, b)| *a - *b)
                .collect(),
            clock_ns: self.clock_ns - earlier.clock_ns,
        }
    }

    /// Total misses across all levels.
    pub fn total_misses(&self) -> u64 {
        self.levels.iter().map(|l| l.misses()).sum()
    }
}

/// The simulated machine: arena + cache hierarchy + counters + clock.
#[derive(Debug)]
pub struct MemorySystem {
    spec: HardwareSpec,
    /// One simulated cache per spec level (same order).
    caches: Vec<SimCache>,
    /// Indices (into `caches`) of the data path, inside-out: caches first,
    /// then the buffer pool if present.
    data_path: Vec<usize>,
    /// Indices of TLB levels.
    tlb_path: Vec<usize>,
    stats: Vec<LevelStats>,
    clock_ns: f64,
    arena: Arena,
    chunk: u64,
    trace: Option<MissTrace>,
}

impl MemorySystem {
    /// Build a memory system for `spec` (miss classification disabled).
    pub fn new(spec: HardwareSpec) -> Self {
        Self::build(spec, false)
    }

    /// Build a memory system with `[HS89]` compulsory/capacity/conflict
    /// classification enabled (slower; used by the miss-taxonomy
    /// experiments).
    pub fn with_classification(spec: HardwareSpec) -> Self {
        Self::build(spec, true)
    }

    fn build(spec: HardwareSpec, classify: bool) -> Self {
        let caches: Vec<SimCache> = spec
            .levels()
            .iter()
            .map(|l| {
                let c = SimCache::new(l.clone());
                if classify {
                    c.with_classification()
                } else {
                    c
                }
            })
            .collect();
        let mut data_path = Vec::new();
        let mut tlb_path = Vec::new();
        for (i, l) in spec.levels().iter().enumerate() {
            match l.kind {
                LevelKind::Cache | LevelKind::BufferPool => data_path.push(i),
                LevelKind::Tlb => tlb_path.push(i),
            }
        }
        let chunk = data_path
            .first()
            .map(|&i| spec.levels()[i].line)
            .unwrap_or(64);
        let n = spec.levels().len();
        MemorySystem {
            spec,
            caches,
            data_path,
            tlb_path,
            stats: vec![LevelStats::default(); n],
            clock_ns: 0.0,
            arena: Arena::new(),
            chunk,
            trace: None,
        }
    }

    /// Attach a bounded miss-event trace (see [`MissTrace`]); replaces
    /// any previous trace.
    pub fn attach_trace(&mut self, capacity: usize) {
        self.trace = Some(MissTrace::new(capacity));
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&MissTrace> {
        self.trace.as_ref()
    }

    /// Detach and return the trace.
    pub fn take_trace(&mut self) -> Option<MissTrace> {
        self.trace.take()
    }

    /// The hardware description being simulated.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// Allocate simulated memory (see [`Arena::alloc`]).
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        self.arena.alloc(bytes, align)
    }

    /// Allocate with a deliberate misalignment (see [`Arena::alloc_offset`]).
    pub fn alloc_offset(&mut self, bytes: u64, align: u64, offset: u64) -> Addr {
        self.arena.alloc_offset(bytes, align, offset)
    }

    /// Host-side view of the backing bytes (no simulation). Use for
    /// workload setup that must not perturb the counters.
    pub fn host(&self) -> &Arena {
        &self.arena
    }

    /// Mutable host-side view (no simulation).
    pub fn host_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    #[inline]
    fn touch_chunk(&mut self, addr: Addr) {
        // TLB probe (page-granular, independent of the data path).
        for &ti in &self.tlb_path {
            let st = &mut self.stats[ti];
            st.accesses += 1;
            match self.caches[ti].access(addr) {
                AccessOutcome::Hit => st.hits += 1,
                AccessOutcome::Miss { sequential, class } => {
                    let lvl = self.caches[ti].level();
                    let ns = if sequential {
                        lvl.seq_miss_ns
                    } else {
                        lvl.rand_miss_ns
                    };
                    if sequential {
                        st.seq_misses += 1;
                    } else {
                        st.rand_misses += 1;
                    }
                    record_class(st, class);
                    st.charged_ns += ns;
                    self.clock_ns += ns;
                    if let Some(t) = &mut self.trace {
                        t.record(MissEvent {
                            level: ti,
                            line: self.caches[ti].line_of(addr),
                            sequential,
                        });
                    }
                }
            }
        }
        // Data path: inside-out, stop at first hit.
        for &di in &self.data_path {
            let st = &mut self.stats[di];
            st.accesses += 1;
            match self.caches[di].access(addr) {
                AccessOutcome::Hit => {
                    st.hits += 1;
                    break;
                }
                AccessOutcome::Miss { sequential, class } => {
                    let lvl = self.caches[di].level();
                    let ns = if sequential {
                        lvl.seq_miss_ns
                    } else {
                        lvl.rand_miss_ns
                    };
                    if sequential {
                        st.seq_misses += 1;
                    } else {
                        st.rand_misses += 1;
                    }
                    record_class(st, class);
                    st.charged_ns += ns;
                    self.clock_ns += ns;
                    if let Some(t) = &mut self.trace {
                        t.record(MissEvent {
                            level: di,
                            line: self.caches[di].line_of(addr),
                            sequential,
                        });
                    }
                }
            }
        }
    }

    /// Simulate an access touching `[addr, addr+len)` (read and write are
    /// symmetric: the paper does not distinguish read from write bandwidth,
    /// §2.2).
    pub fn touch(&mut self, addr: Addr, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr & !(self.chunk - 1);
        let last = (addr + len - 1) & !(self.chunk - 1);
        let mut a = first;
        loop {
            self.touch_chunk(a);
            if a >= last {
                break;
            }
            a += self.chunk;
        }
    }

    /// Simulated read of `len` bytes at `addr` (cache accounting only; use
    /// the typed readers to also fetch data).
    #[inline]
    pub fn read(&mut self, addr: Addr, len: u64) {
        self.touch(addr, len);
    }

    /// Simulated write of `len` bytes at `addr` (cache accounting only).
    #[inline]
    pub fn write(&mut self, addr: Addr, len: u64) {
        self.touch(addr, len);
    }

    /// Simulated read of a little-endian `u64`.
    #[inline]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        self.touch(addr, 8);
        self.arena.read_u64(addr)
    }

    /// Simulated write of a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.touch(addr, 8);
        self.arena.write_u64(addr, v);
    }

    /// Simulated read of a little-endian `u32`.
    #[inline]
    pub fn read_u32(&mut self, addr: Addr) -> u32 {
        self.touch(addr, 4);
        self.arena.read_u32(addr)
    }

    /// Simulated write of a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.touch(addr, 4);
        self.arena.write_u32(addr, v);
    }

    /// Simulated read into `buf`.
    pub fn read_bytes(&mut self, addr: Addr, buf: &mut [u8]) {
        self.touch(addr, buf.len() as u64);
        self.arena.read_bytes(addr, buf);
    }

    /// Simulated write of `buf`.
    pub fn write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        self.touch(addr, buf.len() as u64);
        self.arena.write_bytes(addr, buf);
    }

    /// Simulated copy of `len` bytes (reads source, writes destination).
    pub fn copy(&mut self, src: Addr, dst: Addr, len: u64) {
        self.touch(src, len);
        self.touch(dst, len);
        self.arena.copy(src, dst, len);
    }

    /// Current per-level counters (order of [`HardwareSpec::levels`]).
    pub fn stats(&self) -> &[LevelStats] {
        &self.stats
    }

    /// Counters for the level called `name`, if it exists.
    pub fn stats_for(&self, name: &str) -> Option<&LevelStats> {
        self.spec.level_index(name).map(|i| &self.stats[i])
    }

    /// Charged memory time so far, in nanoseconds (the measured side of
    /// Eq 3.1).
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Copy all counters for an interval measurement.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            levels: self.stats.clone(),
            clock_ns: self.clock_ns,
        }
    }

    /// Counters accumulated since `earlier`.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        self.snapshot().since(earlier)
    }

    /// Zero all counters and the clock (cache contents are kept).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = LevelStats::default();
        }
        self.clock_ns = 0.0;
    }

    /// Evict everything from every cache (counters are kept). The paper's
    /// experiments "assume initially empty caches" (§4.5); call this
    /// between algorithm runs to restore that state.
    pub fn flush_caches(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
    }

    /// True if the line of `addr` is resident at the level called `name`.
    pub fn is_resident(&self, name: &str, addr: Addr) -> bool {
        self.spec
            .level_index(name)
            .map(|i| self.caches[i].contains(addr))
            .unwrap_or(false)
    }
}

#[inline]
fn record_class(st: &mut LevelStats, class: Option<MissClass>) {
    match class {
        Some(MissClass::Compulsory) => st.compulsory += 1,
        Some(MissClass::Capacity) => st.capacity_misses += 1,
        Some(MissClass::Conflict) => st.conflict_misses += 1,
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::presets;

    fn mem() -> MemorySystem {
        MemorySystem::new(presets::tiny())
    }

    #[test]
    fn sequential_sweep_miss_count_matches_lines() {
        // tiny L1: 32 B lines. Sweeping 4096 bytes touches 128 lines.
        let mut m = mem();
        let p = m.alloc(4096, 64);
        for i in 0..512 {
            m.read(p + i * 8, 8);
        }
        let l1 = m.stats_for("L1").unwrap();
        assert_eq!(l1.misses(), 128);
        // Sequential stream: all but the first miss are line-adjacent.
        assert_eq!(l1.rand_misses, 1);
        assert_eq!(l1.seq_misses, 127);
        // L2 (64 B lines): 64 misses.
        let l2 = m.stats_for("L2").unwrap();
        assert_eq!(l2.misses(), 64);
    }

    #[test]
    fn repeated_in_cache_access_hits() {
        let mut m = mem();
        let p = m.alloc(1024, 64); // fits tiny L1 (2 KB)
        for _ in 0..3 {
            for i in 0..128 {
                m.read(p + i * 8, 8);
            }
        }
        let l1 = m.stats_for("L1").unwrap();
        assert_eq!(l1.misses(), 32); // 1024/32 lines, first sweep only
        assert_eq!(l1.hits, 3 * 128 - 32);
    }

    #[test]
    fn clock_charges_miss_latencies() {
        let mut m = mem();
        let p = m.alloc(64, 64);
        m.read(p, 8);
        // One L1 miss (random, 15 ns) + one L2 miss (random, 150 ns) + one
        // TLB miss (100 ns) = 265 ns.
        assert!((m.clock_ns() - 265.0).abs() < 1e-9);
        m.read(p, 8); // now everything hits: no charge
        assert!((m.clock_ns() - 265.0).abs() < 1e-9);
    }

    #[test]
    fn tlb_counts_page_misses() {
        let mut m = mem();
        // tiny TLB: 8 entries of 1 KB pages.
        let p = m.alloc(16 * 1024, 1024);
        for page in 0..16 {
            m.read(p + page * 1024, 8);
        }
        let tlb = m.stats_for("TLB").unwrap();
        assert_eq!(tlb.misses(), 16);
        // Sweep again: 16 pages > 8 entries, LRU thrashes, all miss again.
        for page in 0..16 {
            m.read(p + page * 1024, 8);
        }
        assert_eq!(m.stats_for("TLB").unwrap().misses(), 32);
    }

    #[test]
    fn multi_line_touch_counts_every_line() {
        let mut m = mem();
        let p = m.alloc(256, 32);
        m.read(p, 256); // 8 L1 lines in one call
        assert_eq!(m.stats_for("L1").unwrap().misses(), 8);
    }

    #[test]
    fn unaligned_touch_spans_extra_line() {
        let mut m = mem();
        let p = m.alloc_offset(64, 32, 16);
        m.read(p, 32); // bytes 16..48 of two 32-byte lines
        assert_eq!(m.stats_for("L1").unwrap().misses(), 2);
    }

    #[test]
    fn snapshot_delta() {
        let mut m = mem();
        let p = m.alloc(4096, 64);
        m.read(p, 64);
        let snap = m.snapshot();
        m.read(p + 2048, 64);
        let d = m.delta_since(&snap);
        let l1 = m.spec().level_index("L1").unwrap();
        assert_eq!(d.levels[l1].misses(), 2);
        assert!(d.clock_ns > 0.0);
    }

    #[test]
    fn reset_and_flush() {
        let mut m = mem();
        let p = m.alloc(64, 64);
        m.read(p, 8);
        m.reset_stats();
        assert_eq!(m.clock_ns(), 0.0);
        assert_eq!(m.stats_for("L1").unwrap().accesses, 0);
        // Cache still warm: a re-read hits.
        m.read(p, 8);
        assert_eq!(m.stats_for("L1").unwrap().misses(), 0);
        m.flush_caches();
        m.read(p, 8);
        assert_eq!(m.stats_for("L1").unwrap().misses(), 1);
    }

    #[test]
    fn data_roundtrip_through_simulation() {
        let mut m = mem();
        let p = m.alloc(128, 8);
        m.write_u64(p, 77);
        m.write_u32(p + 8, 11);
        assert_eq!(m.read_u64(p), 77);
        assert_eq!(m.read_u32(p + 8), 11);
        let mut buf = [0u8; 4];
        m.write_bytes(p + 16, &[1, 2, 3, 4]);
        m.read_bytes(p + 16, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn origin2000_l2_line_span() {
        // One 128-byte L2 line covers four 32-byte L1 lines: sweeping one
        // L2 line causes 4 L1 misses but only 1 L2 miss.
        let mut m = MemorySystem::new(presets::origin2000());
        let p = m.alloc(128, 128);
        for i in 0..4 {
            m.read(p + i * 32, 8);
        }
        assert_eq!(m.stats_for("L1").unwrap().misses(), 4);
        assert_eq!(m.stats_for("L2").unwrap().misses(), 1);
    }

    #[test]
    fn is_resident_reflects_cache_state() {
        let mut m = mem();
        let p = m.alloc(64, 64);
        assert!(!m.is_resident("L1", p));
        m.read(p, 8);
        assert!(m.is_resident("L1", p));
        assert!(m.is_resident("L2", p));
    }

    #[test]
    fn classification_mode_populates_classes() {
        let mut m = MemorySystem::with_classification(presets::tiny());
        let p = m.alloc(8192, 64); // 4× tiny L1
        for i in 0..256 {
            m.read(p + i * 32, 8);
        }
        for i in 0..256 {
            m.read(p + i * 32, 8);
        }
        let l1 = m.stats_for("L1").unwrap();
        assert_eq!(l1.compulsory, 256);
        assert!(l1.capacity_misses > 0);
        assert_eq!(
            l1.compulsory + l1.capacity_misses + l1.conflict_misses,
            l1.misses()
        );
    }

    #[test]
    fn trace_records_misses_with_stream_classification() {
        let mut m = mem();
        m.attach_trace(64);
        let p = m.alloc(1024, 64);
        for i in 0..32 {
            m.read(p + i * 32, 8);
        }
        let trace = m.trace().unwrap();
        // L1 index is 0 in the tiny spec; 32 line misses recorded.
        let l1_events: Vec<_> = trace.events().filter(|e| e.level == 0).collect();
        assert_eq!(l1_events.len(), 32);
        // All but the first are stream (sequential) misses.
        assert!(l1_events[1..].iter().all(|e| e.sequential));
        let hist = trace.stride_histogram(0);
        assert_eq!(hist.get(&1), Some(&31));
        // Detach and reuse.
        let owned = m.take_trace().unwrap();
        assert!(m.trace().is_none());
        assert_eq!(
            owned.len(),
            32 + owned.events().filter(|e| e.level != 0).count()
        );
    }

    #[test]
    fn buffer_pool_level_participates() {
        let hw = presets::with_buffer_pool(presets::tiny(), 1 << 20, 8192);
        let mut m = MemorySystem::new(hw);
        let p = m.alloc(8192, 8192);
        m.read(p, 8);
        let bp = m.stats_for("BP").unwrap();
        assert_eq!(bp.misses(), 1); // first touch faults the page in
        assert!(m.clock_ns() > 6.0e6); // dominated by the disk seek
    }
}
