//! Miss-event tracing: a bounded ring buffer of recent miss events,
//! attachable to a [`crate::MemorySystem`] for diagnosing why an
//! experiment's miss counts differ from a prediction.
//!
//! Traces record *misses only* (hits are the overwhelming majority and
//! carry no information the counters don't already hold), with the level
//! index, the line index, and the sequential/random classification.

use std::collections::VecDeque;

/// One recorded miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// Index of the level in the spec's level order.
    pub level: usize,
    /// The missed line's index at that level (`addr / B_level`).
    pub line: u64,
    /// Was the miss classified sequential (EDO stream)?
    pub sequential: bool,
}

/// A bounded miss-event recorder.
#[derive(Debug)]
pub struct MissTrace {
    events: VecDeque<MissEvent>,
    capacity: usize,
    dropped: u64,
}

impl MissTrace {
    /// A trace keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> MissTrace {
        assert!(capacity > 0);
        MissTrace {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Record one miss (oldest events fall off when full).
    pub fn record(&mut self, ev: MissEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &MissEvent> {
        self.events.iter()
    }

    /// How many events were evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clear the ring (the drop counter is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Stride histogram of the retained events at one level: maps the
    /// line-distance between consecutive misses to its frequency.
    /// A dominant `+1` entry identifies a sequential stream; a flat
    /// histogram identifies random traffic — the quickest way to see
    /// *which* pattern actually hit a level.
    pub fn stride_histogram(&self, level: usize) -> std::collections::HashMap<i64, u64> {
        let mut hist = std::collections::HashMap::new();
        let mut prev: Option<u64> = None;
        for ev in &self.events {
            if ev.level != level {
                continue;
            }
            if let Some(p) = prev {
                let delta = ev.line as i64 - p as i64;
                *hist.entry(delta).or_insert(0) += 1;
            }
            prev = Some(ev.line);
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(level: usize, line: u64) -> MissEvent {
        MissEvent {
            level,
            line,
            sequential: false,
        }
    }

    #[test]
    fn records_in_order() {
        let mut t = MissTrace::new(8);
        t.record(ev(0, 1));
        t.record(ev(0, 2));
        let lines: Vec<u64> = t.events().map(|e| e.line).collect();
        assert_eq!(lines, [1, 2]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = MissTrace::new(3);
        for i in 0..5 {
            t.record(ev(0, i));
        }
        let lines: Vec<u64> = t.events().map(|e| e.line).collect();
        assert_eq!(lines, [2, 3, 4]);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn stride_histogram_detects_streams() {
        let mut t = MissTrace::new(64);
        for i in 0..10 {
            t.record(ev(0, i)); // sequential stream at level 0
        }
        for &l in &[100u64, 7, 42, 13] {
            t.record(ev(1, l)); // scattered at level 1
        }
        let h0 = t.stride_histogram(0);
        assert_eq!(h0.get(&1), Some(&9));
        let h1 = t.stride_histogram(1);
        assert!(h1.values().all(|&c| c == 1), "{h1:?}");
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let mut t = MissTrace::new(1);
        t.record(ev(0, 1));
        t.record(ev(0, 2));
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
