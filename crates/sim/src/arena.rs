//! The simulated address space.
//!
//! A bump allocator over a real `Vec<u8>` backing store: simulated
//! addresses are offsets into the store, so database operators read and
//! write real bytes (their results are testable) while the
//! [`crate::MemorySystem`] accounts for the cache behaviour of every
//! access.

use crate::Addr;

/// Base of the simulated address space. Non-zero so that address 0 can act
/// as a null pointer in engine data structures (e.g. hash-chain ends).
pub const ARENA_BASE: Addr = 4096;

/// A growable simulated address space with real backing bytes.
#[derive(Debug, Default)]
pub struct Arena {
    data: Vec<u8>,
    next: Addr,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            data: Vec::new(),
            next: ARENA_BASE,
        }
    }

    /// Allocate `bytes` bytes aligned to `align` (must be a power of two).
    /// Returns the simulated address of the first byte.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        self.next = addr + bytes;
        let needed = (self.next - ARENA_BASE) as usize;
        if self.data.len() < needed {
            self.data.resize(needed, 0);
        }
        addr
    }

    /// Allocate with a deliberate byte offset past an `align`-boundary:
    /// `alloc_offset(n, 64, 3)` returns an address `≡ 3 (mod 64)`.
    ///
    /// The alignment experiments of the paper's §4.2 (Figure 5) place a
    /// region at every possible offset within a cache line; this is the
    /// hook that makes that possible.
    pub fn alloc_offset(&mut self, bytes: u64, align: u64, offset: u64) -> Addr {
        let base = self.alloc(bytes + offset, align);
        base + offset
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - ARENA_BASE
    }

    /// First address past the allocated space.
    pub fn high_water(&self) -> Addr {
        self.next
    }

    #[inline]
    fn idx(&self, addr: Addr) -> usize {
        debug_assert!(addr >= ARENA_BASE, "address {addr} below arena base");
        (addr - ARENA_BASE) as usize
    }

    /// Read `buf.len()` bytes starting at `addr` (host-side; no simulation).
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) {
        let i = self.idx(addr);
        buf.copy_from_slice(&self.data[i..i + buf.len()]);
    }

    /// Write `buf` starting at `addr` (host-side; no simulation).
    pub fn write_bytes(&mut self, addr: Addr, buf: &[u8]) {
        let i = self.idx(addr);
        self.data[i..i + buf.len()].copy_from_slice(buf);
    }

    /// Read a little-endian `u64` at `addr` (host-side).
    #[inline]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let i = self.idx(addr);
        u64::from_le_bytes(self.data[i..i + 8].try_into().expect("8 bytes"))
    }

    /// Write a little-endian `u64` at `addr` (host-side).
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        let i = self.idx(addr);
        self.data[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u32` at `addr` (host-side).
    #[inline]
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let i = self.idx(addr);
        u32::from_le_bytes(self.data[i..i + 4].try_into().expect("4 bytes"))
    }

    /// Write a little-endian `u32` at `addr` (host-side).
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        let i = self.idx(addr);
        self.data[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copy `len` bytes from `src` to `dst` within the arena (host-side).
    pub fn copy(&mut self, src: Addr, dst: Addr, len: u64) {
        let s = self.idx(src);
        let d = self.idx(dst);
        self.data.copy_within(s..s + len as usize, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut a = Arena::new();
        let p1 = a.alloc(10, 64);
        assert_eq!(p1 % 64, 0);
        let p2 = a.alloc(1, 128);
        assert_eq!(p2 % 128, 0);
        assert!(p2 >= p1 + 10);
    }

    #[test]
    fn alloc_offset_lands_off_boundary() {
        let mut a = Arena::new();
        for off in 0..32 {
            let p = a.alloc_offset(100, 32, off);
            assert_eq!(p % 32, off);
        }
    }

    #[test]
    fn u64_roundtrip() {
        let mut a = Arena::new();
        let p = a.alloc(64, 8);
        a.write_u64(p, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(a.read_u64(p), 0xDEAD_BEEF_CAFE_F00D);
        a.write_u64(p + 8, 42);
        assert_eq!(a.read_u64(p), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(a.read_u64(p + 8), 42);
    }

    #[test]
    fn u32_roundtrip() {
        let mut a = Arena::new();
        let p = a.alloc(16, 4);
        a.write_u32(p, 0x1234_5678);
        a.write_u32(p + 4, 0x9ABC_DEF0);
        assert_eq!(a.read_u32(p), 0x1234_5678);
        assert_eq!(a.read_u32(p + 4), 0x9ABC_DEF0);
    }

    #[test]
    fn byte_roundtrip_and_copy() {
        let mut a = Arena::new();
        let src = a.alloc(16, 8);
        let dst = a.alloc(16, 8);
        a.write_bytes(src, b"hello world!!!!!");
        a.copy(src, dst, 16);
        let mut buf = [0u8; 16];
        a.read_bytes(dst, &mut buf);
        assert_eq!(&buf, b"hello world!!!!!");
    }

    #[test]
    fn zero_initialised() {
        let mut a = Arena::new();
        let p = a.alloc(32, 8);
        assert_eq!(a.read_u64(p), 0);
        assert_eq!(a.read_u64(p + 24), 0);
    }

    #[test]
    fn allocated_tracks_high_water() {
        let mut a = Arena::new();
        assert_eq!(a.allocated(), 0);
        a.alloc(100, 1);
        assert_eq!(a.allocated(), 100);
        assert_eq!(a.high_water(), ARENA_BASE + 100);
    }
}
