//! O(1) LRU set used for large fully-associative caches and for the
//! shadow cache that classifies capacity vs. conflict misses.
//!
//! The structure is a hash map from tag to node index plus an intrusive
//! doubly-linked list over a node arena; both `touch` (hit) and `insert`
//! (miss + possible eviction) are O(1).

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    tag: u64,
    prev: u32,
    next: u32,
}

/// A fixed-capacity LRU set of `u64` tags.
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    map: HashMap<u64, u32>,
    nodes: Vec<Node>,
    head: u32, // most recently used
    tail: u32, // least recently used
    free: Vec<u32>,
}

impl LruSet {
    /// Create an LRU set holding at most `capacity` tags.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be positive");
        LruSet {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of resident tags.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no tags are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of resident tags.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `tag` is resident (does not update recency).
    pub fn contains(&self, tag: u64) -> bool {
        self.map.contains_key(&tag)
    }

    fn unlink(&mut self, idx: u32) {
        let node = self.nodes[idx as usize];
        if node.prev != NIL {
            self.nodes[node.prev as usize].next = node.next;
        } else {
            self.head = node.next;
        }
        if node.next != NIL {
            self.nodes[node.next as usize].prev = node.prev;
        } else {
            self.tail = node.prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Access `tag`: returns `true` on hit (tag was resident; it is marked
    /// most-recently-used), `false` on miss (tag is inserted, evicting the
    /// least-recently-used tag if the set is full).
    pub fn access(&mut self, tag: u64) -> bool {
        if let Some(&idx) = self.map.get(&tag) {
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return true;
        }
        // Miss: evict if full.
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let vtag = self.nodes[victim as usize].tag;
            self.unlink(victim);
            self.map.remove(&vtag);
            self.free.push(victim);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize].tag = tag;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                tag,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.push_front(idx);
        self.map.insert(tag, idx);
        false
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// The least-recently-used tag, if any (test/diagnostic helper).
    pub fn lru_tag(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.nodes[self.tail as usize].tag)
    }

    /// The most-recently-used tag, if any (test/diagnostic helper).
    pub fn mru_tag(&self) -> Option<u64> {
        (self.head != NIL).then(|| self.nodes[self.head as usize].tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut s = LruSet::new(4);
        assert!(!s.access(10));
        assert!(s.access(10));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut s = LruSet::new(2);
        s.access(1);
        s.access(2);
        s.access(1); // 1 is now MRU, 2 is LRU
        assert!(!s.access(3)); // evicts 2
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert!(s.contains(3));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut s = LruSet::new(8);
        for t in 0..100 {
            s.access(t);
        }
        assert_eq!(s.len(), 8);
        // The last 8 tags are resident.
        for t in 92..100 {
            assert!(s.contains(t), "tag {t} should be resident");
        }
        assert!(!s.contains(91));
    }

    #[test]
    fn lru_mru_tracking() {
        let mut s = LruSet::new(3);
        s.access(1);
        s.access(2);
        s.access(3);
        assert_eq!(s.mru_tag(), Some(3));
        assert_eq!(s.lru_tag(), Some(1));
        s.access(1);
        assert_eq!(s.mru_tag(), Some(1));
        assert_eq!(s.lru_tag(), Some(2));
    }

    #[test]
    fn clear_resets() {
        let mut s = LruSet::new(2);
        s.access(1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.lru_tag(), None);
        assert!(!s.access(1)); // miss again: compulsory after clear
    }

    #[test]
    fn single_slot_set() {
        let mut s = LruSet::new(1);
        assert!(!s.access(1));
        assert!(s.access(1));
        assert!(!s.access(2));
        assert!(!s.access(1));
    }

    #[test]
    fn reuses_freed_nodes() {
        let mut s = LruSet::new(2);
        for t in 0..1000 {
            s.access(t);
        }
        // The node arena must not grow unboundedly.
        assert!(s.nodes.len() <= 3);
    }

    #[test]
    fn scan_of_capacity_plus_one_always_misses() {
        // Classic LRU pathology: cyclic sweep over capacity+1 distinct tags
        // never hits after warm-up.
        let mut s = LruSet::new(4);
        for t in 0..5u64 {
            s.access(t);
        }
        let mut hits = 0;
        for _ in 0..3 {
            for t in 0..5u64 {
                if s.access(t) {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 0);
    }
}
