//! A single simulated cache level: set-associative placement with LRU
//! replacement (the paper's §2.1: LRU is "the most common replacement
//! algorithm").

use crate::lru::LruSet;
use crate::stats::MissClass;
use gcm_hardware::CacheLevel;
use std::collections::HashSet;

/// Result of probing a cache with one line-granular access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident and has been installed; `sequential` is
    /// true when the missed line is the successor of the previously missed
    /// line (the EDO-friendly stream of §2.2), `class` is the optional
    /// `[HS89]` classification.
    Miss {
        sequential: bool,
        class: Option<MissClass>,
    },
}

impl AccessOutcome {
    /// True if the probe hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Storage for the cache's sets: small associativities use per-set vectors
/// ordered most-recently-used first; large (fully-associative) organisations
/// use the O(1) [`LruSet`].
#[derive(Debug, Clone)]
enum Sets {
    /// `sets × ways` tag store; each inner `Vec` is MRU-first.
    Small { sets: Vec<Vec<u64>>, ways: usize },
    /// One big LRU set (fully associative or very wide).
    Big(LruSet),
}

/// A simulated cache level.
///
/// Addresses are mapped to lines by `addr / B`; lines are mapped to sets by
/// `line mod sets` (the standard modulo-indexing of real hardware). All
/// parameters come from the [`CacheLevel`] description.
#[derive(Debug, Clone)]
pub struct SimCache {
    level: CacheLevel,
    line_shift: u32,
    set_count: u64,
    sets: Sets,
    /// Recently missed lines, one slot per concurrently tracked access
    /// stream (modern memory systems detect several sequential streams at
    /// once; 8 matches typical hardware prefetchers). A miss whose line
    /// follows one of these heads is classified sequential (§2.2 EDO).
    stream_heads: [u64; STREAMS],
    next_stream: usize,
    /// Shadow structures for `[HS89]` classification (enabled on demand):
    /// every line ever seen (compulsory detection) and a fully-associative
    /// LRU of the same capacity (capacity vs. conflict detection).
    shadow: Option<Shadow>,
}

/// Number of concurrent sequential streams the miss classifier tracks.
const STREAMS: usize = 8;

#[derive(Debug, Clone)]
struct Shadow {
    seen: HashSet<u64>,
    full_assoc: LruSet,
}

/// Threshold above which a set-associative organisation switches to the
/// O(1) LRU implementation.
const BIG_WAYS: u64 = 64;

impl SimCache {
    /// Build a simulated cache for the given level description.
    pub fn new(level: CacheLevel) -> Self {
        let lines = level.lines().max(1);
        let ways = level.assoc.ways(lines);
        let set_count = (lines / ways).max(1);
        let sets = if ways > BIG_WAYS && set_count == 1 {
            Sets::Big(LruSet::new(lines as usize))
        } else {
            Sets::Small {
                sets: vec![Vec::with_capacity(ways as usize); set_count as usize],
                ways: ways as usize,
            }
        };
        SimCache {
            line_shift: level.line.trailing_zeros(),
            set_count,
            sets,
            stream_heads: [u64::MAX; STREAMS],
            next_stream: 0,
            shadow: None,
            level,
        }
    }

    /// Enable `[HS89]` miss classification (costs an extra shadow lookup per
    /// access).
    pub fn with_classification(mut self) -> Self {
        let lines = self.level.lines().max(1) as usize;
        self.shadow = Some(Shadow {
            seen: HashSet::new(),
            full_assoc: LruSet::new(lines),
        });
        self
    }

    /// The hardware description this cache simulates.
    pub fn level(&self) -> &CacheLevel {
        &self.level
    }

    /// The line index covering `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line: u64) -> u64 {
        if self.set_count.is_power_of_two() {
            line & (self.set_count - 1)
        } else {
            line % self.set_count
        }
    }

    /// Probe the cache with a line-granular access covering `addr`.
    /// On a miss the line is installed (LRU victim evicted).
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let line = self.line_of(addr);
        let hit = match &mut self.sets {
            Sets::Big(lru) => lru.access(line),
            Sets::Small { sets, ways } => {
                let set = if self.set_count.is_power_of_two() {
                    line & (self.set_count - 1)
                } else {
                    line % self.set_count
                };
                let slot = &mut sets[set as usize];
                if let Some(pos) = slot.iter().position(|&t| t == line) {
                    // Move to front (MRU).
                    let t = slot.remove(pos);
                    slot.insert(0, t);
                    true
                } else {
                    if slot.len() == *ways {
                        slot.pop(); // evict LRU (last)
                    }
                    slot.insert(0, line);
                    false
                }
            }
        };
        if hit {
            // A resident line also counts as "recently missed stream" reset?
            // No: the EDO stream detector only tracks misses.
            if let Some(sh) = &mut self.shadow {
                sh.seen.insert(line);
                sh.full_assoc.access(line);
            }
            return AccessOutcome::Hit;
        }
        // Stream detection: sequential iff this line extends one of the
        // tracked miss streams.
        let prev = line.wrapping_sub(1);
        // (`line == 0` has no predecessor; u64::MAX doubles as the empty
        // sentinel, which simulated addresses never reach.)
        let sequential = if let Some(slot) = (line > 0)
            .then(|| self.stream_heads.iter().position(|&h| h == prev))
            .flatten()
        {
            self.stream_heads[slot] = line;
            true
        } else {
            self.stream_heads[self.next_stream] = line;
            self.next_stream = (self.next_stream + 1) % STREAMS;
            false
        };
        let class = self.shadow.as_mut().map(|sh| {
            let first = sh.seen.insert(line);
            let fa_hit = sh.full_assoc.access(line);
            if first {
                MissClass::Compulsory
            } else if fa_hit {
                MissClass::Conflict
            } else {
                MissClass::Capacity
            }
        });
        AccessOutcome::Miss { sequential, class }
    }

    /// True if the line covering `addr` is resident (no state change).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        match &self.sets {
            Sets::Big(lru) => lru.contains(line),
            Sets::Small { sets, .. } => sets[self.set_of(line) as usize].contains(&line),
        }
    }

    /// Drop all resident lines (the EDO stream detector and the compulsory
    /// history are kept: a flushed line re-misses as capacity/conflict in
    /// real hardware terms only if re-referenced, but its first-ever
    /// reference remains the only compulsory one).
    pub fn flush(&mut self) {
        match &mut self.sets {
            Sets::Big(lru) => lru.clear(),
            Sets::Small { sets, .. } => {
                for s in sets {
                    s.clear();
                }
            }
        }
        if let Some(sh) = &mut self.shadow {
            sh.full_assoc.clear();
        }
        self.stream_heads = [u64::MAX; STREAMS];
        self.next_stream = 0;
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> u64 {
        match &self.sets {
            Sets::Big(lru) => lru.len() as u64,
            Sets::Small { sets, .. } => sets.iter().map(|s| s.len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcm_hardware::{Associativity, LevelKind, Sharing};

    fn level(cap: u64, line: u64, assoc: Associativity) -> CacheLevel {
        CacheLevel {
            name: "T".into(),
            kind: LevelKind::Cache,
            capacity: cap,
            line,
            assoc,
            seq_miss_ns: 1.0,
            rand_miss_ns: 2.0,
            sharing: Sharing::Private,
        }
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = SimCache::new(level(1024, 32, Associativity::Ways(2)));
        assert!(!c.access(100).is_hit());
        assert!(c.access(100).is_hit());
        assert!(c.access(96).is_hit()); // same 32-byte line as 100
        assert!(!c.access(128).is_hit()); // next line
    }

    #[test]
    fn sequential_miss_detection() {
        let mut c = SimCache::new(level(1024, 32, Associativity::Ways(2)));
        match c.access(0) {
            AccessOutcome::Miss { sequential, .. } => assert!(!sequential), // first miss: no stream yet
            _ => panic!("expected miss"),
        }
        match c.access(32) {
            AccessOutcome::Miss { sequential, .. } => assert!(sequential), // adjacent line
            _ => panic!("expected miss"),
        }
        match c.access(4096) {
            AccessOutcome::Miss { sequential, .. } => assert!(!sequential), // jump
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn direct_mapped_conflict() {
        // 4 lines of 32 B, direct mapped: addresses 0 and 128 share set 0.
        let mut c = SimCache::new(level(128, 32, Associativity::DirectMapped));
        assert!(!c.access(0).is_hit());
        assert!(!c.access(128).is_hit()); // evicts line 0
        assert!(!c.access(0).is_hit()); // conflict: line 0 gone
    }

    #[test]
    fn two_way_avoids_that_conflict() {
        let mut c = SimCache::new(level(128, 32, Associativity::Ways(2)));
        assert!(!c.access(0).is_hit());
        assert!(!c.access(128).is_hit());
        assert!(c.access(0).is_hit()); // 2-way: both fit in the set
    }

    #[test]
    fn lru_within_set() {
        // One set, 2 ways (2 lines of 32 B, fully associative).
        let mut c = SimCache::new(level(64, 32, Associativity::Full));
        c.access(0); // lines: [0]
        c.access(32); // [1,0]
        c.access(0); // [0,1] — 0 now MRU
        assert!(!c.access(64).is_hit()); // evicts line 1 (LRU)
        assert!(c.access(0).is_hit());
        assert!(!c.access(32).is_hit());
    }

    #[test]
    fn classification_compulsory_capacity_conflict() {
        // Direct-mapped, 2 lines. Lines 0 and 2 conflict (both map to set 0).
        let mut c = SimCache::new(level(64, 32, Associativity::DirectMapped)).with_classification();
        let class = |o: AccessOutcome| match o {
            AccessOutcome::Miss { class, .. } => class.unwrap(),
            _ => panic!("expected miss"),
        };
        assert_eq!(class(c.access(0)), MissClass::Compulsory);
        assert_eq!(class(c.access(64)), MissClass::Compulsory); // line 2, set 0, evicts 0

        // Line 0 again: a fully-assoc cache of 2 lines would still hold it
        // => conflict miss.
        assert_eq!(class(c.access(0)), MissClass::Conflict);
        // Now sweep far beyond capacity, then return: capacity miss.
        for a in (0..1024).step_by(32) {
            c.access(a);
        }
        assert_eq!(class(c.access(0)), MissClass::Capacity);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = SimCache::new(level(1024, 32, Associativity::Ways(2)));
        c.access(0);
        c.access(32);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0).is_hit());
    }

    #[test]
    fn big_fully_associative_uses_lru_set() {
        // 4096 lines fully associative: exercises the Big variant.
        let mut c = SimCache::new(level(4096 * 32, 32, Associativity::Full));
        for a in (0..4096 * 32).step_by(32) {
            assert!(!c.access(a).is_hit());
        }
        // Everything fits: all hits on second sweep.
        for a in (0..4096 * 32).step_by(32) {
            assert!(c.access(a).is_hit());
        }
        // One more distinct line evicts the oldest.
        c.access(4096 * 32);
        assert!(!c.access(0).is_hit());
    }

    #[test]
    fn contains_is_side_effect_free() {
        let mut c = SimCache::new(level(1024, 32, Associativity::Ways(2)));
        c.access(0);
        assert!(c.contains(31));
        assert!(!c.contains(32));
        assert!(c.contains(0)); // still resident; contains didn't disturb
    }

    #[test]
    fn resident_never_exceeds_lines() {
        let mut c = SimCache::new(level(256, 32, Associativity::Ways(4)));
        for a in (0..100_000).step_by(32) {
            c.access(a);
        }
        assert!(c.resident_lines() <= 8);
    }
}
