//! # Hierarchical memory simulator
//!
//! The measurement substrate of this reproduction. The paper validates its
//! cost model against the hardware event counters of a MIPS R10000; we do
//! not have that machine, so this crate provides the substitute documented
//! in `DESIGN.md`: a deterministic software simulation of the same memory
//! hierarchy.
//!
//! * [`cache::SimCache`] — a set-associative cache with LRU replacement,
//!   parameterised by the [`gcm_hardware::CacheLevel`] it simulates.
//! * [`memory::MemorySystem`] — the full hierarchy: data caches probed
//!   inside-out, a TLB probed per page, per-level hit/miss counters, and a
//!   *charged-latency clock* that scores each miss with the level's
//!   sequential or random miss latency (sequential = the missed line is
//!   adjacent to the previously missed line of that level, modelling the
//!   EDO/prefetch behaviour of §2.2).
//! * [`arena::Arena`] — the simulated address space with real backing
//!   bytes, so database operators compute real results while their memory
//!   behaviour is measured.
//! * [`stats::LevelStats`] — the counter set corresponding to the paper's
//!   "exact number of cache and TLB misses" measurements (§6.1), extended
//!   with the compulsory/capacity/conflict classification of `[HS89]` (§2.1).
//!
//! The simulator is intentionally single-threaded: miss counts are exactly
//! reproducible, which the validation experiments rely on.
//!
//! ```
//! use gcm_hardware::presets;
//! use gcm_sim::MemorySystem;
//!
//! let mut mem = MemorySystem::new(presets::tiny());
//! let buf = mem.alloc(4096, 64);
//! for i in 0..64 {
//!     mem.read(buf + i * 64, 8); // sequential sweep, 64-byte stride
//! }
//! let l1 = &mem.stats()[0];
//! assert!(l1.misses() > 0);
//! ```

pub mod arena;
pub mod cache;
pub mod lru;
pub mod memory;
pub mod stats;
pub mod trace;

pub use arena::Arena;
pub use cache::{AccessOutcome, SimCache};
pub use memory::{MemorySystem, Snapshot};
pub use stats::{LevelStats, MissClass};
pub use trace::{MissEvent, MissTrace};

/// A simulated memory address (an offset into the [`Arena`]).
pub type Addr = u64;
