//! # gcm-workload — deterministic data generators
//!
//! The paper's experiments (§6) use "randomly distributed (numerical)
//! data", 1:1 join matches, and sorted inputs for merge-join. This crate
//! generates those workloads deterministically (seeded), so every
//! experiment run measures identical access sequences — a property the
//! simulator-based validation relies on.

pub mod rng;

use rng::SplitMix64;

/// A deterministic generator of experiment columns.
#[derive(Debug)]
pub struct Workload {
    rng: SplitMix64,
}

impl Workload {
    /// A workload source with the given seed.
    pub fn new(seed: u64) -> Workload {
        Workload {
            rng: SplitMix64::new(seed),
        }
    }

    /// `n` uniformly random `u64` keys (duplicates possible).
    pub fn uniform_keys(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.rng.next_u64()).collect()
    }

    /// Uniformly random keys bounded to `[0, bound)`.
    pub fn uniform_keys_bounded(&mut self, n: usize, bound: u64) -> Vec<u64> {
        assert!(bound > 0);
        (0..n).map(|_| self.rng.next_below(bound)).collect()
    }

    /// The keys `0..n` in random order: distinct values, random placement —
    /// the paper's "randomly distributed data" for sorting and 1:1 joins.
    pub fn shuffled_keys(&mut self, n: usize) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..n as u64).collect();
        self.shuffle(&mut keys);
        keys
    }

    /// The keys `0..n`, sorted ascending (merge-join inputs).
    pub fn sorted_keys(&mut self, n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    /// A pair of columns with a perfect 1:1 match: both contain the keys
    /// `0..n`, each in its own random order (the paper's §6.2 merge- and
    /// hash-join workload).
    pub fn join_pair(&mut self, n: usize) -> (Vec<u64>, Vec<u64>) {
        (self.shuffled_keys(n), self.shuffled_keys(n))
    }

    /// Zipf-distributed keys over `[0, universe)` with exponent `theta`
    /// (skewed workloads for the robustness tests). `theta = 0` is
    /// uniform; larger values are more skewed.
    pub fn zipf_keys(&mut self, n: usize, universe: u64, theta: f64) -> Vec<u64> {
        assert!(universe > 0);
        // Inverse-CDF sampling over a precomputed harmonic table.
        let table = universe.min(1 << 16);
        let mut cdf = Vec::with_capacity(table as usize);
        let mut acc = 0.0;
        for k in 1..=table {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        let scale = universe as f64 / table as f64;
        (0..n)
            .map(|_| {
                let x = self.rng.next_f64() * total;
                let i = match cdf.binary_search_by(|p| p.partial_cmp(&x).expect("finite")) {
                    Ok(i) | Err(i) => i as u64,
                };
                // For universes beyond the table, spread each bucket
                // uniformly over its share of the key space.
                let base = (i as f64 * scale) as u64;
                let width = scale.max(1.0) as u64;
                (base + self.rng.next_below(width)).min(universe - 1)
            })
            .collect()
    }

    /// A foreign-key column: `n` uniform draws from `[0, dim_n)`,
    /// referencing a dimension keyed `0..dim_n` (star-schema fact
    /// tables; duplicates expected).
    pub fn foreign_keys(&mut self, n: usize, dim_n: u64) -> Vec<u64> {
        self.uniform_keys_bounded(n, dim_n)
    }

    /// A Zipf-skewed foreign-key column: `n` draws from `[0, dim_n)`
    /// with exponent `theta`. A handful of hot dimension keys carry
    /// most references — exactly the shape that imbalances hash
    /// partitions, since every duplicate of a hot key lands in the same
    /// partition no matter how good the hash is.
    pub fn zipf_foreign_keys(&mut self, n: usize, dim_n: u64, theta: f64) -> Vec<u64> {
        self.zipf_keys(n, dim_n, theta)
    }

    /// A star scenario whose fact table references its dimensions with
    /// Zipf-skewed foreign keys (exponent `theta`; `theta = 0` recovers
    /// [`Workload::star_scenario`]'s uniform shape). The partition-skew
    /// workload of the parallel-join experiments: chained fact ⋈ dim
    /// joins still preserve the fact cardinality, but partition-
    /// parallel workers inherit very unequal probe loads.
    pub fn skewed_star_scenario(
        &mut self,
        fact_n: usize,
        dim_n: usize,
        dims: usize,
        theta: f64,
    ) -> StarScenario {
        StarScenario {
            fact: self.zipf_foreign_keys(fact_n, dim_n as u64, theta),
            dims: (0..dims).map(|_| self.shuffled_keys(dim_n)).collect(),
            key_bound: dim_n as u64,
        }
    }

    /// A star-style multi-table scenario: one fact table of `fact_n`
    /// foreign keys plus `dims` dimension tables, each holding the keys
    /// `0..dim_n` exactly once in its own random order. Every fact
    /// tuple matches exactly one tuple per dimension, so chained
    /// fact ⋈ dim joins preserve the fact cardinality — the workload
    /// shape of the whole-plan optimizer experiments.
    pub fn star_scenario(&mut self, fact_n: usize, dim_n: usize, dims: usize) -> StarScenario {
        StarScenario {
            fact: self.foreign_keys(fact_n, dim_n as u64),
            dims: (0..dims).map(|_| self.shuffled_keys(dim_n)).collect(),
            key_bound: dim_n as u64,
        }
    }

    /// A multi-tenant query mix: `n` query requests, each owned by one
    /// of the `tenants` (drawn Zipf-skewed with exponent `theta`, so
    /// tenant 0 is the hottest — the arrival pattern of a service where
    /// a few tenants dominate traffic). Each request carries its
    /// tenant's [`TenantClass`] and a selectivity drawn from the
    /// class's small *quantized* bucket set — real services see the
    /// same parameterised query shapes over and over, which is what
    /// makes a plan cache pay off.
    pub fn query_mix(
        &mut self,
        n: usize,
        tenants: &[TenantClass],
        theta: f64,
    ) -> Vec<QueryRequest> {
        assert!(!tenants.is_empty(), "need at least one tenant");
        let owners = self.zipf_keys(n, tenants.len() as u64, theta);
        owners
            .into_iter()
            .map(|t| {
                let tenant = t as usize;
                let class = tenants[tenant];
                let buckets = class.selectivity_buckets();
                let selectivity = buckets[self.rng.next_below(buckets.len() as u64) as usize];
                QueryRequest {
                    tenant,
                    class,
                    selectivity,
                }
            })
            .collect()
    }

    /// Open-loop Poisson arrival times: `n` cumulative timestamps (in
    /// nanoseconds from an arbitrary epoch) whose gaps are i.i.d.
    /// exponential with the given mean — the arrival process of a
    /// service facing many independent users, where requests keep
    /// coming whether or not earlier ones finished. Timestamps are
    /// strictly derived from the seed, so a load run can be replayed
    /// exactly.
    pub fn poisson_arrivals(&mut self, n: usize, mean_interarrival_ns: f64) -> Vec<u64> {
        assert!(
            mean_interarrival_ns > 0.0 && mean_interarrival_ns.is_finite(),
            "mean interarrival must be positive and finite"
        );
        let mut t = 0.0f64;
        (0..n)
            .map(|_| {
                // Inverse-CDF of Exp(1/mean): -ln(1-U) * mean, U ∈ [0,1).
                let u = self.rng.next_f64();
                t += -(1.0 - u).ln() * mean_interarrival_ns;
                t.round() as u64
            })
            .collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n` (as indices).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// `n` independent random indices into `[0, bound)` (with
    /// replacement) — the access sequence of `r_acc`.
    pub fn random_indices(&mut self, n: usize, bound: u64) -> Vec<usize> {
        (0..n)
            .map(|_| self.rng.next_below(bound) as usize)
            .collect()
    }
}

/// A tenant's workload profile in a multi-tenant query mix (see
/// [`Workload::query_mix`]): what shape of query the tenant sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantClass {
    /// Highly selective single-table probes (σ keeping a sliver of the
    /// key domain): tiny footprints, the classic cache-friendly OLTP
    /// shape.
    PointLookup,
    /// Broad single-table sweeps with an aggregate on top: streaming
    /// footprints that batch almost freely.
    ScanHeavy,
    /// Fact ⋈ dimension joins with an aggregate: the build-table
    /// footprints that contend for the shared cache level.
    JoinHeavy,
}

impl TenantClass {
    /// All classes, in shedding-priority order (see
    /// [`TenantClass::priority`]).
    pub const ALL: [TenantClass; 3] = [
        TenantClass::PointLookup,
        TenantClass::ScanHeavy,
        TenantClass::JoinHeavy,
    ];

    /// A stable snake_case label for metric series and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            TenantClass::PointLookup => "point_lookup",
            TenantClass::ScanHeavy => "scan_heavy",
            TenantClass::JoinHeavy => "join_heavy",
        }
    }

    /// Shedding priority: lower values are served first when an
    /// overloaded service must pick what to keep. Point lookups are the
    /// cheapest and most latency-sensitive, so they outrank scans,
    /// which outrank joins.
    pub fn priority(self) -> u8 {
        match self {
            TenantClass::PointLookup => 0,
            TenantClass::ScanHeavy => 1,
            TenantClass::JoinHeavy => 2,
        }
    }

    /// A stable wire index (inverse of [`TenantClass::from_index`]).
    pub fn index(self) -> u8 {
        self.priority()
    }

    /// Decode a wire index produced by [`TenantClass::index`].
    pub fn from_index(i: u8) -> Option<TenantClass> {
        match i {
            0 => Some(TenantClass::PointLookup),
            1 => Some(TenantClass::ScanHeavy),
            2 => Some(TenantClass::JoinHeavy),
            _ => None,
        }
    }

    /// The class's quantized selectivity buckets. Requests draw from a
    /// deliberately small set so a service sees repeated plan shapes
    /// (the plan-cache workload); the values parameterise the
    /// `key < threshold` predicate via
    /// [`StarScenario::threshold`]-style scaling.
    pub fn selectivity_buckets(&self) -> &'static [f64] {
        match self {
            TenantClass::PointLookup => &[0.002, 0.01],
            TenantClass::ScanHeavy => &[0.5, 1.0],
            TenantClass::JoinHeavy => &[0.25, 0.5],
        }
    }
}

/// One query request of a multi-tenant mix (see
/// [`Workload::query_mix`]): which tenant sent it, the tenant's query
/// shape, and the request's (quantized) selectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Index into the tenant list the mix was generated from.
    pub tenant: usize,
    /// The owning tenant's query shape.
    pub class: TenantClass,
    /// Fraction of the key domain the request's predicate keeps, drawn
    /// from [`TenantClass::selectivity_buckets`].
    pub selectivity: f64,
}

/// A star-style multi-table scenario (see [`Workload::star_scenario`]):
/// fact foreign keys plus per-dimension primary-key columns over the
/// shared key domain `[0, key_bound)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarScenario {
    /// Fact-table foreign keys (uniform draws, duplicates expected).
    pub fact: Vec<u64>,
    /// One key column per dimension: `0..key_bound`, shuffled.
    pub dims: Vec<Vec<u64>>,
    /// Exclusive upper bound of the shared key domain.
    pub key_bound: u64,
}

impl StarScenario {
    /// The `key < threshold` cut-off that keeps the given fraction of
    /// the key domain — the selectivity-parameterised predicate of the
    /// optimizer workloads (`selectivity` clamped to `[0, 1]`).
    pub fn threshold(&self, selectivity: f64) -> u64 {
        (selectivity.clamp(0.0, 1.0) * self.key_bound as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let a = Workload::new(42).uniform_keys(100);
        let b = Workload::new(42).uniform_keys(100);
        assert_eq!(a, b);
        let c = Workload::new(43).uniform_keys(100);
        assert_ne!(a, c);
    }

    #[test]
    fn shuffled_keys_are_a_permutation() {
        let mut w = Workload::new(7);
        let mut keys = w.shuffled_keys(1000);
        keys.sort_unstable();
        assert_eq!(keys, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn shuffle_actually_shuffles() {
        let mut w = Workload::new(7);
        let keys = w.shuffled_keys(1000);
        let sorted: Vec<u64> = (0..1000).collect();
        assert_ne!(keys, sorted);
    }

    #[test]
    fn join_pair_matches_one_to_one() {
        let mut w = Workload::new(1);
        let (l, r) = w.join_pair(500);
        let mut ls = l.clone();
        let mut rs = r.clone();
        ls.sort_unstable();
        rs.sort_unstable();
        assert_eq!(ls, rs);
        assert_ne!(l, r); // different orders
    }

    #[test]
    fn bounded_keys_respect_bound() {
        let mut w = Workload::new(3);
        for k in w.uniform_keys_bounded(10_000, 37) {
            assert!(k < 37);
        }
    }

    #[test]
    fn sorted_keys_are_sorted() {
        let mut w = Workload::new(3);
        let keys = w.sorted_keys(100);
        assert!(keys.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn permutation_and_indices() {
        let mut w = Workload::new(9);
        let mut p = w.permutation(256);
        p.sort_unstable();
        assert_eq!(p, (0..256).collect::<Vec<usize>>());
        for i in w.random_indices(1000, 50) {
            assert!(i < 50);
        }
    }

    #[test]
    fn star_scenario_shapes() {
        let mut w = Workload::new(21);
        let star = w.star_scenario(5_000, 700, 3);
        assert_eq!(star.fact.len(), 5_000);
        assert_eq!(star.dims.len(), 3);
        assert_eq!(star.key_bound, 700);
        // Every fact key references an existing dimension key.
        assert!(star.fact.iter().all(|&k| k < 700));
        // Each dimension is a permutation of 0..700 (a primary-key set).
        for d in &star.dims {
            let mut sorted = d.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..700).collect::<Vec<u64>>());
        }
        // Dimensions differ in order (independent shuffles).
        assert_ne!(star.dims[0], star.dims[1]);
    }

    #[test]
    fn star_threshold_tracks_selectivity() {
        let star = Workload::new(22).star_scenario(100, 1000, 1);
        assert_eq!(star.threshold(0.0), 0);
        assert_eq!(star.threshold(0.25), 250);
        assert_eq!(star.threshold(1.0), 1000);
        // Out-of-range selectivities clamp.
        assert_eq!(star.threshold(7.0), 1000);
        assert_eq!(star.threshold(-1.0), 0);
        // The predicate keeps roughly the requested fraction of facts.
        let mut w = Workload::new(23);
        let s = w.star_scenario(10_000, 1_000, 1);
        let t = s.threshold(0.3);
        let kept = s.fact.iter().filter(|&&k| k < t).count();
        assert!((2_500..3_500).contains(&kept), "kept {kept}");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut w = Workload::new(11);
        let keys = w.zipf_keys(20_000, 1000, 1.0);
        let low = keys.iter().filter(|&&k| k < 100).count();
        let high = keys.iter().filter(|&&k| k >= 500).count();
        // The lowest decile must dominate the whole upper half.
        assert!(low > high, "low={low} high={high}");
        for k in keys {
            assert!(k < 1000);
        }
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut w = Workload::new(13);
        let keys = w.zipf_keys(50_000, 100, 0.0);
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        // Uniform expectation: 500 hits; allow generous slack.
        assert!(zeros > 300 && zeros < 800, "zeros={zeros}");
    }

    #[test]
    fn skewed_star_scenario_shapes() {
        let mut w = Workload::new(24);
        let star = w.skewed_star_scenario(20_000, 1_000, 2, 1.2);
        assert_eq!(star.fact.len(), 20_000);
        assert_eq!(star.key_bound, 1_000);
        assert!(star.fact.iter().all(|&k| k < 1_000));
        for d in &star.dims {
            let mut sorted = d.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..1_000).collect::<Vec<u64>>());
        }
        // The head of the key domain dominates the tail.
        let head = star.fact.iter().filter(|&&k| k < 100).count();
        let tail = star.fact.iter().filter(|&&k| k >= 500).count();
        assert!(head > 2 * tail, "head={head} tail={tail}");
        // theta = 0 falls back to (roughly) uniform references.
        let flat = Workload::new(25).skewed_star_scenario(20_000, 1_000, 1, 0.0);
        let head = flat.fact.iter().filter(|&&k| k < 100).count();
        assert!((1_200..2_800).contains(&head), "head={head}");
    }

    #[test]
    fn query_mix_shapes_and_skew() {
        let tenants = [
            TenantClass::PointLookup,
            TenantClass::ScanHeavy,
            TenantClass::JoinHeavy,
        ];
        let mut w = Workload::new(31);
        let mix = w.query_mix(2_000, &tenants, 1.2);
        assert_eq!(mix.len(), 2_000);
        for q in &mix {
            assert!(q.tenant < tenants.len());
            assert_eq!(q.class, tenants[q.tenant]);
            assert!(q.class.selectivity_buckets().contains(&q.selectivity));
        }
        // Zipf arrival skew: tenant 0 dominates.
        let count = |t: usize| mix.iter().filter(|q| q.tenant == t).count();
        assert!(count(0) > count(1) && count(1) > count(2), "skew missing");
        // Every tenant still appears.
        assert!(count(2) > 0);
        // The distinct plan-shape space stays small (the plan-cache
        // property): ≤ 2 buckets per class.
        let distinct: std::collections::HashSet<(usize, u64)> = mix
            .iter()
            .map(|q| (q.tenant, q.selectivity.to_bits()))
            .collect();
        assert!(distinct.len() <= 2 * tenants.len(), "{}", distinct.len());
    }

    #[test]
    fn query_mix_is_deterministic() {
        let tenants = [TenantClass::ScanHeavy, TenantClass::JoinHeavy];
        let a = Workload::new(5).query_mix(100, &tenants, 0.8);
        let b = Workload::new(5).query_mix(100, &tenants, 0.8);
        assert_eq!(a, b);
        let c = Workload::new(6).query_mix(100, &tenants, 0.8);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_arrivals_are_monotone_and_deterministic() {
        let a = Workload::new(44).poisson_arrivals(1_000, 50_000.0);
        let b = Workload::new(44).poisson_arrivals(1_000, 50_000.0);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|p| p[0] <= p[1]), "must be cumulative");
        let c = Workload::new(45).poisson_arrivals(1_000, 50_000.0);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_arrivals_hit_the_offered_rate() {
        let mean = 20_000.0;
        let n = 50_000;
        let arr = Workload::new(46).poisson_arrivals(n, mean);
        let measured = arr[n - 1] as f64 / n as f64;
        let err = (measured - mean).abs() / mean;
        assert!(err < 0.05, "mean gap {measured} vs {mean}");
        // Exponential gaps: the coefficient of variation is ~1 (a fixed
        // interarrival schedule would be 0) — the open-loop burstiness
        // the shedder has to absorb.
        let gaps: Vec<f64> = std::iter::once(arr[0])
            .chain(arr.windows(2).map(|p| p[1] - p[0]))
            .map(|g| g as f64)
            .collect();
        let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (m * m);
        assert!((0.85..1.15).contains(&cv2), "cv² = {cv2}");
    }

    #[test]
    fn tenant_class_labels_and_indices_round_trip() {
        for c in TenantClass::ALL {
            assert_eq!(TenantClass::from_index(c.index()), Some(c));
        }
        assert_eq!(TenantClass::from_index(3), None);
        assert_eq!(TenantClass::PointLookup.label(), "point_lookup");
        assert_eq!(TenantClass::ScanHeavy.label(), "scan_heavy");
        assert_eq!(TenantClass::JoinHeavy.label(), "join_heavy");
        // Priorities: point lookups outrank scans outrank joins.
        assert!(TenantClass::PointLookup.priority() < TenantClass::ScanHeavy.priority());
        assert!(TenantClass::ScanHeavy.priority() < TenantClass::JoinHeavy.priority());
    }

    #[test]
    fn zipf_large_universe() {
        let mut w = Workload::new(17);
        let keys = w.zipf_keys(1000, 1 << 30, 0.8);
        assert!(keys.iter().all(|&k| k < (1 << 30)));
        assert!(keys.iter().any(|&k| k > 1 << 20)); // tail is populated
    }
}
