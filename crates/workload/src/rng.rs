//! SplitMix64: a tiny, fast, high-quality deterministic PRNG.
//!
//! We deliberately use a hand-rolled generator for the workload columns
//! rather than `rand`'s `StdRng`: the experiments must reproduce the exact
//! access sequences across `rand` version bumps. (`rand` is still used in
//! property tests via `proptest`.)

/// SplitMix64 state (Steele, Lea & Flood; the JDK's `SplittableRandom`).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (Lemire's multiply-shift reduction;
    /// the tiny modulo bias is irrelevant for workload generation).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value of SplitMix64 with seed 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn reasonably_uniform() {
        let mut r = SplitMix64::new(5);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
