//! Pricing trie descent with the paper's pattern algebra.
//!
//! A lookup in an 8-ary hash-trie hops `avg_depth` nodes, each hop a
//! hash-directed jump to an unpredictable address — exactly the
//! *repetitive random access* basic pattern `r_acc(R, q)` (§3.2): `q`
//! accesses spread uniformly over a region of `R.n` items. The node
//! arena and the leaf-entry storage are two regions accessed
//! concurrently (`⊙`), so a batch of lookups prices as
//!
//! ```text
//! r_acc(TrieNodes, q · avg_depth) ⊙ r_acc(TrieEntries, q)
//! ```
//!
//! [`TrieStats`] measures a snapshot's real shape (node count, mean
//! descent depth) so the pattern reflects the structure as built, not a
//! textbook ideal; the `trie_cost` integration test closes the
//! calibrate → model → measure loop on the native backend.

use crate::{Node, TrieSnapshot};
use gcm_core::{Pattern, Region};

/// Shape summary of one trie snapshot, sufficient to price lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct TrieStats {
    /// Total nodes (branches + leaves).
    pub nodes: u64,
    /// Total entries stored in leaves.
    pub entries: u64,
    /// Mean root-to-entry node hops, entry-weighted (≥ 1 when
    /// non-empty): the expected random touches per lookup.
    pub avg_depth: f64,
    /// Deepest root-to-entry hop count.
    pub max_depth: u32,
    /// Bytes per node as allocated (`size_of::<Node<K, V>>`).
    pub node_bytes: u64,
    /// Bytes per leaf entry (`size_of::<(K, V)>`).
    pub entry_bytes: u64,
}

impl TrieStats {
    /// The access pattern of `lookups` point queries against the
    /// snapshot this summary was taken from: repetitive random accesses
    /// over the node arena (one per hop) concurrent with the entry
    /// touches in the leaves.
    pub fn lookup_pattern(&self, lookups: u64) -> Pattern {
        let nodes = Region::new("TrieNodes", self.nodes.max(1), self.node_bytes.max(1));
        let entries = Region::new("TrieEntries", self.entries.max(1), self.entry_bytes.max(1));
        let hops = ((lookups as f64 * self.avg_depth).ceil() as u64).max(lookups);
        Pattern::conc(vec![
            Pattern::r_acc(nodes, hops),
            Pattern::r_acc(entries, lookups),
        ])
    }

    /// Rough CPU work per lookup in "logical operations" for Eq 6.1's
    /// `T_cpu = w_CPU · ops`: one hash plus one compare-and-branch per
    /// hop, matching how the engine counts operator work.
    pub fn lookup_ops(&self, lookups: u64) -> u64 {
        ((lookups as f64 * (1.0 + self.avg_depth)).ceil() as u64).max(lookups)
    }
}

impl<K, V> TrieSnapshot<K, V> {
    /// Measure this version's shape for the cost model.
    pub fn stats(&self) -> TrieStats {
        let mut stats = TrieStats {
            nodes: 0,
            entries: 0,
            avg_depth: 0.0,
            max_depth: 0,
            node_bytes: std::mem::size_of::<Node<K, V>>() as u64,
            entry_bytes: std::mem::size_of::<(K, V)>() as u64,
        };
        let mut depth_sum = 0.0;
        if let Some(node) = &self.root.node {
            walk(node, 1, &mut stats, &mut depth_sum);
        }
        if stats.entries > 0 {
            stats.avg_depth = depth_sum / stats.entries as f64;
        }
        stats
    }
}

fn walk<K, V>(node: &Node<K, V>, depth: u32, stats: &mut TrieStats, depth_sum: &mut f64) {
    stats.nodes += 1;
    match node {
        Node::Leaf { entries, .. } => {
            stats.entries += entries.len() as u64;
            *depth_sum += f64::from(depth) * entries.len() as f64;
            stats.max_depth = stats.max_depth.max(depth);
        }
        Node::Branch { children } => {
            for child in children.iter().flatten() {
                walk(child, depth + 1, stats, depth_sum);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::TrieMap;

    #[test]
    fn stats_measure_the_real_shape() {
        let map = TrieMap::new();
        let snap = map.snapshot();
        let empty = snap.stats();
        assert_eq!((empty.nodes, empty.entries), (0, 0));
        assert_eq!(empty.avg_depth, 0.0);

        for i in 0..10_000u64 {
            map.insert(i, [0u8; 8]);
        }
        let stats = map.snapshot().stats();
        assert_eq!(stats.entries, 10_000);
        assert!(stats.nodes >= stats.entries / 8, "8-ary fan-out bound");
        // An 8-ary trie over 10k random hashes settles around
        // log8(10k) ≈ 4.4 hops; allow generous slack either side.
        assert!(
            (3.0..=9.0).contains(&stats.avg_depth),
            "avg depth {} out of the plausible band",
            stats.avg_depth
        );
        assert!(f64::from(stats.max_depth) >= stats.avg_depth);
        assert!(stats.node_bytes > 0 && stats.entry_bytes > 0);
    }

    #[test]
    fn lookup_pattern_prices_descent_as_r_acc() {
        let map = TrieMap::new();
        for i in 0..4096u64 {
            map.insert(i, i);
        }
        let stats = map.snapshot().stats();
        let pattern = stats.lookup_pattern(1000);
        let shown = pattern.to_string();
        assert!(
            shown.contains("r_acc(TrieNodes") && shown.contains("r_acc(TrieEntries"),
            "{shown}"
        );
        assert!(shown.contains('⊙'), "{shown}");
        // Hop count scales with lookups × depth.
        assert!(stats.lookup_ops(1000) as f64 >= 1000.0 * stats.avg_depth);
    }
}
