//! # gcm-trie — a snapshot-readable 8-ary hash-trie for the serving path
//!
//! [`TrieMap`] is the concurrency core behind the service layer's plan
//! cache, stats catalog, and shared-build registry: an 8-ary hash-trie
//! (3 hash bits per level) with **copy-on-write nodes** and an **atomic
//! root swap**.
//!
//! * **Readers never block.** [`TrieMap::snapshot`] pins the current
//!   root with a wait-free reader count (no mutex, no CAS retry loop on
//!   the hot path — one `fetch_add`, one validation load) and hands back
//!   an immutable [`TrieSnapshot`]. Lookups and iteration over a
//!   snapshot see one consistent version forever, no matter what
//!   writers do.
//! * **Writers publish, they do not mutate.** A writer clones the
//!   root-to-leaf path it touches (≤ 22 nodes), swaps the root pointer,
//!   and retires the old root once concurrent readers drain. Writers
//!   serialize among themselves on a small mutex; they never make a
//!   reader wait.
//! * **The structure prices itself.** Trie descent is exactly the
//!   paper's *repetitive random access* pattern `r_acc` — see
//!   [`TrieStats::lookup_pattern`], which turns a snapshot's shape into
//!   a [`gcm_core::Pattern`] the cost model can score (and the
//!   `trie_cost` integration test validates against the native
//!   backend).
//!
//! ```
//! use gcm_trie::TrieMap;
//!
//! let map = TrieMap::new();
//! map.insert("answer", 42);
//! let snap = map.snapshot();      // wait-free
//! map.insert("question", 6 * 9); // readers of `snap` are unaffected
//! assert_eq!(snap.get(&"answer"), Some(&42));
//! assert_eq!(snap.len(), 1);
//! assert_eq!(map.snapshot().len(), 2);
//! ```

mod cost;

pub use cost::TrieStats;

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Fan-out of every branch node (2^BITS).
const FAN: usize = 8;
/// Hash bits consumed per level.
const BITS: u32 = 3;
/// Deepest possible branch level: 64 hash bits / 3 bits per level.
/// Two *distinct* hashes differ in some bit below 64, so a split always
/// succeeds by this depth; equal-hash keys share one leaf.
const MAX_DEPTH: u32 = 64u32.div_ceil(BITS);

/// One trie node. `Branch` holds up to [`FAN`] children; `Leaf` holds
/// every entry whose key hashes to `hash` (more than one only on a full
/// 64-bit hash collision).
pub(crate) enum Node<K, V> {
    /// Interior node: children indexed by the next 3 hash bits.
    Branch {
        /// The 8-way child array.
        children: [Option<Arc<Node<K, V>>>; FAN],
    },
    /// Terminal node: all entries sharing one 64-bit hash.
    Leaf {
        /// The shared hash of every entry below.
        hash: u64,
        /// The entries themselves (len > 1 only on hash collision).
        entries: Vec<(K, V)>,
    },
}

/// A published version of the map: the root node plus its exact entry
/// count (so `snapshot().len()` is O(1) and consistent).
pub(crate) struct Root<K, V> {
    pub(crate) node: Option<Arc<Node<K, V>>>,
    pub(crate) len: usize,
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    // DefaultHasher::new() uses fixed keys: deterministic within and
    // across runs, which keeps trie shapes reproducible.
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn child_index(hash: u64, depth: u32) -> usize {
    ((hash >> (depth * BITS)) & (FAN as u64 - 1)) as usize
}

fn node_get<'a, K: Eq, V>(mut node: &'a Node<K, V>, hash: u64, key: &K) -> Option<&'a V> {
    let mut depth = 0;
    loop {
        match node {
            Node::Leaf { hash: h, entries } => {
                return if *h == hash {
                    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                } else {
                    None
                };
            }
            Node::Branch { children } => match &children[child_index(hash, depth)] {
                Some(child) => {
                    node = child;
                    depth += 1;
                }
                None => return None,
            },
        }
    }
}

/// Copy-on-write insert: returns the new subtree plus the value it
/// replaced, cloning only the root-to-leaf path.
fn node_insert<K: Hash + Eq + Clone, V: Clone>(
    node: Option<&Arc<Node<K, V>>>,
    depth: u32,
    hash: u64,
    key: K,
    value: V,
) -> (Arc<Node<K, V>>, Option<V>) {
    match node.map(Arc::as_ref) {
        None => (
            Arc::new(Node::Leaf {
                hash,
                entries: vec![(key, value)],
            }),
            None,
        ),
        Some(Node::Leaf { hash: h, entries }) if *h == hash => {
            let mut entries = entries.clone();
            let old = match entries.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => Some(std::mem::replace(&mut slot.1, value)),
                None => {
                    entries.push((key, value));
                    None
                }
            };
            (Arc::new(Node::Leaf { hash, entries }), old)
        }
        Some(Node::Leaf { hash: h, .. }) => {
            let leaf = Arc::clone(node.expect("leaf arm implies Some"));
            (split_insert(leaf, *h, depth, hash, key, value), None)
        }
        Some(Node::Branch { children }) => {
            let idx = child_index(hash, depth);
            let (child, old) = node_insert(children[idx].as_ref(), depth + 1, hash, key, value);
            let mut children = children.clone();
            children[idx] = Some(child);
            (Arc::new(Node::Branch { children }), old)
        }
    }
}

/// Push an existing leaf one level down until its hash diverges from
/// the incoming key's hash, then hang both below a fresh branch.
fn split_insert<K: Hash + Eq + Clone, V: Clone>(
    leaf: Arc<Node<K, V>>,
    leaf_hash: u64,
    depth: u32,
    hash: u64,
    key: K,
    value: V,
) -> Arc<Node<K, V>> {
    debug_assert!(depth < MAX_DEPTH, "distinct hashes diverge within 64 bits");
    let li = child_index(leaf_hash, depth);
    let hi = child_index(hash, depth);
    let mut children: [Option<Arc<Node<K, V>>>; FAN] = std::array::from_fn(|_| None);
    if li == hi {
        children[li] = Some(split_insert(leaf, leaf_hash, depth + 1, hash, key, value));
    } else {
        children[li] = Some(leaf);
        children[hi] = Some(Arc::new(Node::Leaf {
            hash,
            entries: vec![(key, value)],
        }));
    }
    Arc::new(Node::Branch { children })
}

/// Copy-on-write remove: `None` subtree result means the branch emptied
/// out entirely.
fn node_remove<K: Eq + Clone, V: Clone>(
    node: &Arc<Node<K, V>>,
    depth: u32,
    hash: u64,
    key: &K,
) -> (Option<Arc<Node<K, V>>>, Option<V>) {
    match node.as_ref() {
        Node::Leaf { hash: h, entries } => {
            if *h != hash {
                return (Some(Arc::clone(node)), None);
            }
            match entries.iter().position(|(k, _)| k == key) {
                None => (Some(Arc::clone(node)), None),
                Some(i) => {
                    let mut entries = entries.clone();
                    let (_, v) = entries.remove(i);
                    let kept = if entries.is_empty() {
                        None
                    } else {
                        Some(Arc::new(Node::Leaf { hash: *h, entries }))
                    };
                    (kept, Some(v))
                }
            }
        }
        Node::Branch { children } => {
            let idx = child_index(hash, depth);
            let Some(child) = &children[idx] else {
                return (Some(Arc::clone(node)), None);
            };
            let (new_child, removed) = node_remove(child, depth + 1, hash, key);
            if removed.is_none() {
                return (Some(Arc::clone(node)), None);
            }
            let mut children = children.clone();
            children[idx] = new_child;
            if children.iter().all(Option::is_none) {
                (None, removed)
            } else {
                (Some(Arc::new(Node::Branch { children })), removed)
            }
        }
    }
}

/// A concurrent hash-trie map with wait-free snapshot reads and
/// copy-on-write writers. See the [crate docs](crate) for the design.
pub struct TrieMap<K, V> {
    /// Owns one strong count of an `Arc<Root>`; swapped atomically by
    /// writers, pinned momentarily by readers.
    root: AtomicPtr<Root<K, V>>,
    /// Bumped by every publish; its parity selects the reader slot a
    /// new reader pins.
    epoch: AtomicUsize,
    /// In-flight reader counts, indexed by epoch parity. A writer
    /// retires the old root only after the *old* parity drains, so a
    /// pinned reader can never observe a freed root.
    active: [AtomicUsize; 2],
    /// Serializes writers (readers never take it).
    writer: Mutex<()>,
    /// `TrieMap<K, V>` is `Send`/`Sync` exactly when sharing
    /// `Arc<Root<K, V>>` across threads is.
    marker: PhantomData<Arc<Root<K, V>>>,
}

impl<K, V> Default for TrieMap<K, V> {
    fn default() -> TrieMap<K, V> {
        TrieMap::new()
    }
}

impl<K, V> TrieMap<K, V> {
    /// An empty map.
    pub fn new() -> TrieMap<K, V> {
        let empty = Arc::new(Root::<K, V> { node: None, len: 0 });
        TrieMap {
            root: AtomicPtr::new(Arc::into_raw(empty) as *mut Root<K, V>),
            epoch: AtomicUsize::new(0),
            active: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
            marker: PhantomData,
        }
    }

    /// Pin the current root wait-free and return it as an immutable
    /// snapshot. The hot path is one `fetch_add`, one validation load,
    /// and one `Arc` count bump; the retry loop only spins if a writer
    /// publishes in the window between the two loads.
    pub fn snapshot(&self) -> TrieSnapshot<K, V> {
        let parity = loop {
            let e = self.epoch.load(Ordering::SeqCst);
            self.active[e & 1].fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                break e & 1;
            }
            // A writer flipped the epoch mid-pin: our slot may be the
            // one it is draining. Back out and re-pin.
            self.active[e & 1].fetch_sub(1, Ordering::SeqCst);
        };
        let ptr = self.root.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and carries the
        // map's strong count. Holding the `parity` pin prevents any
        // writer from releasing that count until we unpin below (a
        // writer drains the old parity before dropping the root it
        // swapped out, and the validated pin guarantees `ptr` is not a
        // root an *earlier* writer already retired).
        let root = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.active[parity].fetch_sub(1, Ordering::SeqCst);
        TrieSnapshot { root }
    }

    /// The current entry count (exact, from the published root).
    pub fn len(&self) -> usize {
        self.snapshot().root.len
    }

    /// Whether the map is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock_writer(&self) -> MutexGuard<'_, ()> {
        // The guarded state is always a fully published root, so a
        // poisoned lock carries no torn state worth propagating.
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The root the next write builds on. Only sound while the writer
    /// lock is held: the current root can only be retired by another
    /// writer, and the guard excludes them.
    fn current_locked(&self, _guard: &MutexGuard<'_, ()>) -> &Root<K, V> {
        // SAFETY: see above — the writer lock pins the current root.
        unsafe { &*self.root.load(Ordering::SeqCst) }
    }

    /// Swap in `root`, flip the epoch, wait for old-parity readers to
    /// drain, then release the retired root. Caller holds the writer
    /// lock and must not touch the previous root afterwards.
    fn publish(&self, root: Root<K, V>, _guard: &MutexGuard<'_, ()>) {
        let fresh = Arc::into_raw(Arc::new(root)) as *mut Root<K, V>;
        let old = self.root.swap(fresh, Ordering::SeqCst);
        let e = self.epoch.load(Ordering::SeqCst);
        self.epoch.store(e.wrapping_add(1), Ordering::SeqCst);
        // Readers pinned on the old parity saw either root; both are
        // alive until this drain completes. New readers pin the new
        // parity and can only load the new root.
        while self.active[e & 1].load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `old` is the strong count the map held; no pinned
        // reader can still be borrowing it (drained above), and the
        // caller promised not to use it again.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<K: Hash + Eq + Clone, V: Clone> TrieMap<K, V> {
    /// Clone of the value under `key` in the current version.
    pub fn get(&self, key: &K) -> Option<V> {
        self.snapshot().get(key).cloned()
    }

    /// Insert (or replace) and return the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.update(key, move |_| Some(value))
    }

    /// Remove and return the previous value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.update(key.clone(), |_| None)
    }

    /// CAS-style read-modify-write: `f` sees the current value (or
    /// `None`) and decides the next one (`None` removes). The decision
    /// and the publish are atomic with respect to every other writer;
    /// readers keep their snapshots. Returns the previous value.
    pub fn update<F>(&self, key: K, f: F) -> Option<V>
    where
        F: FnOnce(Option<&V>) -> Option<V>,
    {
        let guard = self.lock_writer();
        let cur = self.current_locked(&guard);
        let hash = hash_of(&key);
        let existing = cur.node.as_ref().and_then(|n| node_get(n, hash, &key));
        match f(existing) {
            Some(value) => {
                let (node, replaced) = node_insert(cur.node.as_ref(), 0, hash, key, value);
                let len = cur.len + usize::from(replaced.is_none());
                self.publish(
                    Root {
                        node: Some(node),
                        len,
                    },
                    &guard,
                );
                replaced
            }
            None => match cur.node.as_ref() {
                Some(n) if existing.is_some() => {
                    let (node, removed) = node_remove(n, 0, hash, &key);
                    let len = cur.len - usize::from(removed.is_some());
                    self.publish(Root { node, len }, &guard);
                    removed
                }
                // Absent stays absent: nothing to publish.
                _ => None,
            },
        }
    }

    /// Return the value under `key`, inserting `make()` first if the
    /// key is absent. Exactly one caller runs `make` per vacancy; every
    /// caller gets a clone of the winning value.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, make: F) -> V {
        let guard = self.lock_writer();
        let cur = self.current_locked(&guard);
        let hash = hash_of(&key);
        if let Some(v) = cur.node.as_ref().and_then(|n| node_get(n, hash, &key)) {
            return v.clone();
        }
        let value = make();
        let (node, _) = node_insert(cur.node.as_ref(), 0, hash, key, value.clone());
        let len = cur.len + 1;
        self.publish(
            Root {
                node: Some(node),
                len,
            },
            &guard,
        );
        value
    }

    /// Keep only entries `keep` approves of; returns how many were
    /// dropped. The survivors are published as **one** new root, so
    /// concurrent readers see either the old version or the fully
    /// filtered one — never a half-retired state.
    pub fn retain<F: FnMut(&K, &V) -> bool>(&self, mut keep: F) -> usize {
        let guard = self.lock_writer();
        let cur = self.current_locked(&guard);
        let mut node: Option<Arc<Node<K, V>>> = None;
        let mut len = 0;
        let mut removed = 0;
        for (k, v) in root_entries(cur) {
            if keep(k, v) {
                let (next, _) = node_insert(node.as_ref(), 0, hash_of(k), k.clone(), v.clone());
                node = Some(next);
                len += 1;
            } else {
                removed += 1;
            }
        }
        if removed > 0 {
            self.publish(Root { node, len }, &guard);
        }
        removed
    }
}

impl<K, V> Drop for TrieMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no readers or writers remain; the
        // pointer is the strong count the map owns.
        unsafe { drop(Arc::from_raw(self.root.load(Ordering::SeqCst))) };
    }
}

impl<K, V> std::fmt::Debug for TrieMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrieMap").field("len", &self.len()).finish()
    }
}

/// An immutable, consistent version of a [`TrieMap`]: lookups,
/// iteration and [`TrieSnapshot::stats`] all describe the single
/// version that was current when [`TrieMap::snapshot`] ran.
pub struct TrieSnapshot<K, V> {
    pub(crate) root: Arc<Root<K, V>>,
}

impl<K, V> Clone for TrieSnapshot<K, V> {
    fn clone(&self) -> TrieSnapshot<K, V> {
        TrieSnapshot {
            root: Arc::clone(&self.root),
        }
    }
}

impl<K, V> TrieSnapshot<K, V> {
    /// Entry count of this version (O(1), stored at publish time).
    pub fn len(&self) -> usize {
        self.root.len
    }

    /// Whether this version is empty.
    pub fn is_empty(&self) -> bool {
        self.root.len == 0
    }

    /// Iterate every `(key, value)` pair of this version, in
    /// unspecified (hash) order.
    pub fn iter(&self) -> Entries<'_, K, V> {
        root_entries(&self.root)
    }
}

impl<K: Hash + Eq, V> TrieSnapshot<K, V> {
    /// Look `key` up in this version.
    pub fn get(&self, key: &K) -> Option<&V> {
        let hash = hash_of(key);
        self.root.node.as_ref().and_then(|n| node_get(n, hash, key))
    }
}

impl<'a, K, V> IntoIterator for &'a TrieSnapshot<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Entries<'a, K, V>;

    fn into_iter(self) -> Entries<'a, K, V> {
        self.iter()
    }
}

impl<K, V> std::fmt::Debug for TrieSnapshot<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrieSnapshot")
            .field("len", &self.root.len)
            .finish()
    }
}

fn root_entries<K, V>(root: &Root<K, V>) -> Entries<'_, K, V> {
    Entries {
        stack: root.node.as_deref().into_iter().collect(),
        entries: [].iter(),
    }
}

/// Depth-first iterator over one trie version's entries.
pub struct Entries<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    entries: std::slice::Iter<'a, (K, V)>,
}

impl<'a, K, V> Iterator for Entries<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            if let Some((k, v)) = self.entries.next() {
                return Some((k, v));
            }
            match self.stack.pop()? {
                Node::Leaf { entries, .. } => self.entries = entries.iter(),
                Node::Branch { children } => {
                    for child in children.iter().rev().flatten() {
                        self.stack.push(child);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let map = TrieMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert(1u64, "one"), None);
        assert_eq!(map.insert(2, "two"), None);
        assert_eq!(map.insert(1, "uno"), Some("one"));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&1), Some("uno"));
        assert_eq!(map.get(&3), None);
        assert_eq!(map.remove(&1), Some("uno"));
        assert_eq!(map.remove(&1), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn snapshots_are_immutable_versions() {
        let map = TrieMap::new();
        for i in 0..100u64 {
            map.insert(i, i * i);
        }
        let snap = map.snapshot();
        for i in 0..100u64 {
            map.remove(&i);
        }
        map.insert(7, 0);
        assert_eq!(snap.len(), 100);
        for i in 0..100u64 {
            assert_eq!(snap.get(&i), Some(&(i * i)), "snapshot holds v{i}");
        }
        assert_eq!(snap.iter().count(), 100);
        assert_eq!(map.snapshot().len(), 1);
        assert_eq!(map.get(&7), Some(0));
    }

    #[test]
    fn update_is_a_read_modify_write() {
        let map = TrieMap::new();
        // Absent → absent publishes nothing.
        assert_eq!(map.update("k", |cur| cur.copied()), None);
        assert!(map.is_empty());
        // Counter semantics through the closure.
        for _ in 0..5 {
            map.update("k", |cur| Some(cur.copied().unwrap_or(0) + 1));
        }
        assert_eq!(map.get(&"k"), Some(5));
        // Present → None removes.
        assert_eq!(map.update("k", |_| None), Some(5));
        assert!(map.is_empty());
    }

    #[test]
    fn get_or_insert_with_runs_make_once_per_vacancy() {
        let map = TrieMap::new();
        let a = map.get_or_insert_with(9u64, || "built");
        let b = map.get_or_insert_with(9u64, || panic!("must reuse"));
        assert_eq!((a, b), ("built", "built"));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn retain_publishes_one_filtered_version() {
        let map = TrieMap::new();
        for i in 0..64u64 {
            map.insert(i, ());
        }
        let before = map.snapshot();
        let removed = map.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 32);
        assert_eq!(map.len(), 32);
        assert_eq!(before.len(), 64, "pre-retain snapshot untouched");
        assert!(map.snapshot().iter().all(|(k, _)| k % 2 == 0));
        // Nothing dropped → nothing published.
        assert_eq!(map.retain(|_, _| true), 0);
    }

    #[test]
    fn iteration_matches_contents() {
        let map = TrieMap::new();
        for i in 0..1000u64 {
            map.insert(i, i + 1);
        }
        let snap = map.snapshot();
        let mut seen: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
        assert!(snap.iter().all(|(k, v)| *v == k + 1));
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let map = Arc::new(TrieMap::new());
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for i in 0..250 {
                        map.insert(w * 1000 + i, w);
                    }
                });
            }
            for _ in 0..4 {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let mut last = 0;
                    while last < 1000 {
                        let snap = map.snapshot();
                        let n = snap.iter().count();
                        // Internal consistency: the stored len is the
                        // real entry count, and growth is monotone.
                        assert_eq!(n, snap.len());
                        assert!(n >= last, "len went backwards: {n} < {last}");
                        last = n.max(last);
                    }
                });
            }
        });
        assert_eq!(map.len(), 1000);
    }
}
