//! Property-based correctness tests for the engine's operators:
//! whatever the (randomised) input, the operators over simulated memory
//! must agree with reference implementations over plain vectors.

use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use proptest::prelude::*;
use std::collections::HashMap;

fn ctx() -> ExecContext {
    ExecContext::new(presets::tiny())
}

fn keys_of(c: &ExecContext, rel: &gcm_engine::Relation) -> Vec<u64> {
    (0..rel.n())
        .map(|i| c.mem.host().read_u64(rel.tuple(i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quicksort_equals_std_sort(
        mut keys in proptest::collection::vec(0u64..1000, 1..400),
        w in prop_oneof![Just(8u64), Just(16), Just(32)],
    ) {
        let mut c = ctx();
        let rel = c.relation_from_keys("U", &keys, w);
        ops::sort::quick_sort(&mut c, &rel);
        keys.sort_unstable();
        prop_assert_eq!(keys_of(&c, &rel), keys);
    }

    #[test]
    fn hash_join_equals_reference(
        uk in proptest::collection::vec(0u64..64, 0..150),
        vk in proptest::collection::vec(0u64..64, 0..150),
    ) {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &uk, 8);
        let v = c.relation_from_keys("V", &vk, 8);
        let out = ops::hash::hash_join(&mut c, &u, &v, "W", 16);
        // Reference: multiset join count per key.
        let mut vcount: HashMap<u64, u64> = HashMap::new();
        for &k in &vk {
            *vcount.entry(k).or_insert(0) += 1;
        }
        let expect: u64 = uk.iter().map(|k| vcount.get(k).copied().unwrap_or(0)).sum();
        prop_assert_eq!(out.n(), expect);
        // Every output key occurs in both inputs.
        for k in keys_of(&c, &out) {
            prop_assert!(uk.contains(&k) && vk.contains(&k));
        }
    }

    #[test]
    fn merge_join_matches_hash_join(
        mut uk in proptest::collection::vec(0u64..50, 0..120),
        mut vk in proptest::collection::vec(0u64..50, 0..120),
    ) {
        let mut c = ctx();
        let u1 = c.relation_from_keys("U1", &uk, 8);
        let v1 = c.relation_from_keys("V1", &vk, 8);
        let hj = ops::hash::hash_join(&mut c, &u1, &v1, "Wh", 16);
        uk.sort_unstable();
        vk.sort_unstable();
        let u2 = c.relation_from_keys("U2", &uk, 8);
        let v2 = c.relation_from_keys("V2", &vk, 8);
        let mj = ops::merge_join::merge_join(&mut c, &u2, &v2, "Wm", 16);
        prop_assert_eq!(hj.n(), mj.n());
        let mut a = keys_of(&c, &hj);
        let mut b = keys_of(&c, &mj);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn partition_preserves_multiset_any_fanout(
        keys in proptest::collection::vec(0u64..10_000, 1..300),
        m in 1u64..40,
    ) {
        let mut c = ctx();
        let input = c.relation_from_keys("U", &keys, 8);
        let parts = ops::partition::hash_partition(&mut c, &input, m, "W");
        prop_assert_eq!(parts.m(), m);
        let mut got = keys_of(&c, &parts.rel);
        let mut expect = keys.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        // Boundaries are monotone and complete.
        prop_assert!(parts.offsets.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*parts.offsets.last().unwrap(), keys.len() as u64);
    }

    #[test]
    fn radix_equals_single_level_refinement(
        keys in proptest::collection::vec(0u64..100_000, 1..300),
        passes in 1u32..4,
    ) {
        // Any pass count yields the same cluster contents.
        let bits = 6;
        let mut c = ctx();
        let input = c.relation_from_keys("U", &keys, 8);
        let multi = ops::radix::radix_partition(&mut c, &input, bits, passes.min(bits), "R");
        let input2 = c.relation_from_keys("U2", &keys, 8);
        let single = ops::radix::radix_partition(&mut c, &input2, bits, 1, "S");
        prop_assert_eq!(&multi.offsets, &single.offsets);
        prop_assert_eq!(keys_of(&c, &multi.rel), keys_of(&c, &single.rel));
    }

    #[test]
    fn part_hash_join_equals_hash_join(
        uk in proptest::collection::vec(0u64..64, 0..100),
        vk in proptest::collection::vec(0u64..64, 0..100),
        m in 1u64..8,
    ) {
        let mut c = ctx();
        let u = c.relation_from_keys("U", &uk, 8);
        let v = c.relation_from_keys("V", &vk, 8);
        let plain = ops::hash::hash_join(&mut c, &u, &v, "Wp", 16);
        let parted = ops::part_hash_join::part_hash_join(&mut c, &u, &v, m, "Wq", 16);
        prop_assert_eq!(plain.n(), parted.n());
        let mut a = keys_of(&c, &plain);
        let mut b = keys_of(&c, &parted);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_count_totals_match_input(
        keys in proptest::collection::vec(0u64..30, 1..250),
    ) {
        let mut c = ctx();
        let input = c.relation_from_keys("U", &keys, 8);
        let out = ops::aggregate::hash_group_count(&mut c, &input, "G");
        let total: u64 = (0..out.n()).map(|i| c.mem.host().read_u64(out.tuple(i) + 8)).sum();
        prop_assert_eq!(total, keys.len() as u64);
        // Group count equals distinct keys.
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        prop_assert_eq!(out.n(), distinct.len() as u64);
    }

    #[test]
    fn set_ops_obey_set_algebra(
        uk in proptest::collection::vec(0u64..40, 0..80),
        vk in proptest::collection::vec(0u64..40, 0..80),
    ) {
        use ops::set_ops::{set_op, SetOp};
        let mut us: Vec<u64> = uk.clone();
        let mut vs: Vec<u64> = vk.clone();
        us.sort_unstable();
        vs.sort_unstable();
        let mut c = ctx();
        let u = c.relation_from_keys("U", &us, 8);
        let v = c.relation_from_keys("V", &vs, 8);
        let uni = set_op(&mut c, &u, &v, SetOp::Union, "W1").n();
        let int = set_op(&mut c, &u, &v, SetOp::Intersect, "W2").n();
        let diff = set_op(&mut c, &u, &v, SetOp::Difference, "W3").n();
        let du: std::collections::HashSet<u64> = uk.iter().copied().collect();
        let dv: std::collections::HashSet<u64> = vk.iter().copied().collect();
        // |U ∪ V| = |U| + |V| − |U ∩ V|; |U \ V| = |U| − |U ∩ V|.
        prop_assert_eq!(uni, (du.len() + dv.len()) as u64 - int);
        prop_assert_eq!(diff, du.len() as u64 - int);
        prop_assert_eq!(int, du.intersection(&dv).count() as u64);
    }

    #[test]
    fn btree_agrees_with_binary_search(
        mut keys in proptest::collection::vec(0u64..100_000, 2..300),
        probes in proptest::collection::vec(0u64..100_000, 1..50),
        node_w in prop_oneof![Just(16u64), Just(32), Just(64)],
    ) {
        keys.sort_unstable();
        keys.dedup();
        let mut c = ctx();
        let tree = ops::btree::BTree::build(&mut c, &keys, node_w, "T");
        for p in probes {
            let expect = keys.binary_search(&p).is_ok();
            prop_assert_eq!(tree.lookup(&mut c, p), expect, "key {}", p);
        }
    }
}
