//! Workspace smoke test: every example target must build and run to
//! completion, so examples can never silently rot.
//!
//! Examples are run in release mode (they push six-figure tuple counts
//! through the cache simulator); the outer `cargo test` run is free to
//! stay in debug.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "cost_from_text",
    "io_cost",
    "join_planner",
    "optimize_query",
    "parallel_query",
    "partition_tuning",
    "serve_mixed_tenants",
    "calibrate_then_model",
    "native_validation",
    "explain_analyze",
    "host_report",
    "net_demo",
];

#[test]
fn every_example_runs_to_completion() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for name in EXAMPLES {
        let source = Path::new(manifest_dir)
            .join("examples")
            .join(format!("{name}.rs"));
        assert!(
            source.is_file(),
            "example source missing: {}",
            source.display()
        );
        let output = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--release", "--example", name])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

#[test]
fn example_list_is_complete() {
    // If someone adds an example without extending EXAMPLES above, fail
    // loudly instead of silently skipping it.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            (path.extension().is_some_and(|x| x == "rs"))
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "examples/*.rs and the smoke-test list diverge"
    );
}
