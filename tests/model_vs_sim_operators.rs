//! Operator-level model validation: the integration analogue of the
//! paper's Figure 7, on the tiny test machine.
//!
//! Each database operator is executed for real over the simulator while
//! its pattern description is evaluated by the cost model; measured and
//! predicted misses/time must agree in shape (cliff positions, winners)
//! and, for the stream-dominated operators, in magnitude.

use gcm_bench::compare::compare_levels;
use gcm_core::{CostModel, CpuCost, Region};
use gcm_engine::{ops, ExecContext};
use gcm_hardware::presets;
use gcm_workload::Workload;

fn total_measured(snapshot: &gcm_sim::Snapshot, idx: usize) -> f64 {
    (snapshot.levels[idx].seq_misses + snapshot.levels[idx].rand_misses) as f64
}

#[test]
fn quicksort_misses_and_step() {
    let spec = presets::tiny_full_assoc();
    let model = CostModel::new(spec.clone());
    let l2 = spec.level_index("L2").unwrap();

    // In-cache table: measured and predicted L2 misses are compulsory
    // only; oversized table: every pass pays.
    let mut results = Vec::new();
    for n in [1024u64, 16_384] {
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(100).shuffled_keys(n as usize);
        let rel = ctx.relation_from_keys("U", &keys, 8);
        let (_, stats) = ctx.measure(|c| ops::sort::quick_sort(c, &rel));
        let predicted = model.misses(&ops::sort::quick_sort_pattern(rel.region()));
        results.push((n, total_measured(&stats.mem, l2), predicted[l2].total()));
    }
    let (_, m_small, p_small) = results[0];
    let (_, m_big, p_big) = results[1];
    // Small table (8 KB < 16 KB L2): both sides see ~compulsory misses.
    let compulsory_small = 8.0 * 1024.0 / 64.0;
    assert!(m_small <= 2.0 * compulsory_small, "measured {m_small}");
    assert!(p_small <= 2.0 * compulsory_small, "predicted {p_small}");
    // Large table (128 KB): both sides see ~log n × compulsory.
    assert!(
        m_big > 8.0 * m_small,
        "step must appear: {m_small} -> {m_big}"
    );
    assert!(
        p_big > 8.0 * p_small,
        "predicted step: {p_small} -> {p_big}"
    );
    // Magnitudes within 2× (quick-sort's skewed segment tree vs. the
    // model's uniform halving).
    let ratio = p_big / m_big;
    assert!((0.5..2.0).contains(&ratio), "L2 ratio {ratio}");
}

#[test]
fn merge_join_misses_match_closely() {
    // Merge-join is pure streaming: the model should be accurate, not
    // just shape-correct.
    let spec = presets::tiny();
    let model = CostModel::new(spec.clone());
    let n = 8192u64;
    let mut ctx = ExecContext::new(spec.clone());
    let keys: Vec<u64> = (0..n).collect();
    let u = ctx.relation_from_keys("U", &keys, 8);
    let v = ctx.relation_from_keys("V", &keys, 8);
    let (out, stats) = ctx.measure(|c| ops::merge_join::merge_join(c, &u, &v, "W", 16));
    let predicted = model.misses(&ops::merge_join::merge_join_pattern(
        u.region(),
        v.region(),
        out.region(),
    ));
    for row in compare_levels(&spec, &stats.mem, &predicted) {
        assert!(
            row.within(0.20, 16.0),
            "{}: measured {} predicted {}",
            row.name,
            row.measured,
            row.predicted
        );
    }
}

#[test]
fn hash_join_cliff_position_agrees() {
    let spec = presets::tiny_full_assoc();
    let model = CostModel::new(spec.clone());
    let l2 = spec.level_index("L2").unwrap();
    let per_tuple = |n: u64| {
        let mut ctx = ExecContext::new(spec.clone());
        let (uk, vk) = Workload::new(101).join_pair(n as usize);
        let u = ctx.relation_from_keys("U", &uk, 8);
        let v = ctx.relation_from_keys("V", &vk, 8);
        let (out, stats) = ctx.measure(|c| ops::hash::hash_join(c, &u, &v, "W", 16));
        let h = Region::new("H", (2 * n).next_power_of_two(), 16);
        let predicted = model.misses(&ops::hash::hash_join_pattern(
            u.region(),
            v.region(),
            &h,
            out.region(),
        ));
        (
            total_measured(&stats.mem, l2) / n as f64,
            predicted[l2].total() / n as f64,
        )
    };
    let (m_small, p_small) = per_tuple(256); // H = 8 KB < L2
    let (m_big, p_big) = per_tuple(16_384); // H = 512 KB ≫ L2
    assert!(m_big > 3.0 * m_small, "measured cliff {m_small} -> {m_big}");
    assert!(
        p_big > 3.0 * p_small,
        "predicted cliff {p_small} -> {p_big}"
    );
    // Post-cliff magnitude within 2× (open-addressing probe chains vs.
    // the model's single-slot abstraction).
    let ratio = p_big / m_big;
    assert!((0.4..2.5).contains(&ratio), "ratio {ratio}");
}

#[test]
fn partition_cliffs_in_both_worlds() {
    let spec = presets::tiny_full_assoc();
    let model = CostModel::new(spec.clone());
    let l1 = spec.level_index("L1").unwrap();
    let tlb = spec.level_index("TLB").unwrap();
    let n = 32_768u64;
    let run = |m: u64| {
        let mut ctx = ExecContext::new(spec.clone());
        let keys = Workload::new(102).shuffled_keys(n as usize);
        let input = ctx.relation_from_keys("U", &keys, 8);
        let (parts, stats) = ctx.measure(|c| ops::partition::hash_partition(c, &input, m, "W"));
        let predicted = model.misses(&ops::partition::partition_pattern(
            input.region(),
            parts.rel.region(),
            m,
        ));
        (
            total_measured(&stats.mem, l1),
            predicted[l1].total(),
            total_measured(&stats.mem, tlb),
            predicted[tlb].total(),
        )
    };
    let low = run(4);
    let mid = run(32); // above TLB entries (8), below L1 lines (64)
    let high = run(512); // above L1 lines

    // TLB cliff between low and mid, both worlds.
    assert!(mid.2 > 2.0 * low.2, "measured TLB cliff {low:?} {mid:?}");
    assert!(mid.3 > 2.0 * low.3, "predicted TLB cliff {low:?} {mid:?}");
    // L1 cliff between mid and high, both worlds.
    assert!(high.0 > 2.0 * mid.0, "measured L1 cliff {mid:?} {high:?}");
    assert!(high.1 > 2.0 * mid.1, "predicted L1 cliff {mid:?} {high:?}");
}

#[test]
fn partitioned_hash_join_crossover() {
    // The paper's headline: plain hash-join loses to partitioned
    // hash-join once the hash table exceeds the cache — in measured
    // misses, measured time, and predicted time alike.
    let spec = presets::tiny_full_assoc();
    let model = CostModel::new(spec.clone());
    let n = 16_384u64; // H = 512 KB ≫ L2 (16 KB)
    let l2 = spec.level_index("L2").unwrap();

    let (uk, vk) = Workload::new(103).join_pair(n as usize);

    // Plain hash-join.
    let mut ctx = ExecContext::new(spec.clone());
    let u = ctx.relation_from_keys("U", &uk, 8);
    let v = ctx.relation_from_keys("V", &vk, 8);
    let (out_plain, plain_stats) = ctx.measure(|c| ops::hash::hash_join(c, &u, &v, "W", 16));
    let h = Region::new("H", (2 * n).next_power_of_two(), 16);
    let plain_pred = model.report(&ops::hash::hash_join_pattern(
        u.region(),
        v.region(),
        &h,
        out_plain.region(),
    ));

    // Partitioned hash-join with cache-fitting partitions.
    let m = 128; // per-partition H = 4 KB < L2
    let mut ctx2 = ExecContext::new(spec.clone());
    let u2 = ctx2.relation_from_keys("U", &uk, 8);
    let v2 = ctx2.relation_from_keys("V", &vk, 8);
    let (out_part, part_stats) =
        ctx2.measure(|c| ops::part_hash_join::part_hash_join(c, &u2, &v2, m, "W", 16));
    let up = Region::new("Up", n, 8);
    let vp = Region::new("Vp", n, 8);
    let part_pred = model.report(&ops::part_hash_join::part_hash_join_pattern(
        u2.region(),
        v2.region(),
        out_part.region(),
        m,
        &up,
        &vp,
    ));

    // Results identical.
    assert_eq!(out_plain.n(), out_part.n());
    // Measured: partitioning wins on L2 misses and on charged time.
    assert!(total_measured(&part_stats.mem, l2) < total_measured(&plain_stats.mem, l2));
    assert!(part_stats.mem.clock_ns < plain_stats.mem.clock_ns);
    // Predicted: the model picks the same winner.
    assert!(part_pred.mem_ns < plain_pred.mem_ns);
}

#[test]
fn eq61_time_prediction_tracks_measurement() {
    // T = T_mem + T_cpu: calibrate per-op CPU cost in-cache, then check
    // predicted total time is within 2× of measured for quick-sort.
    let spec = presets::tiny_full_assoc();
    let model = CostModel::new(spec.clone());
    let per_op_ns = 2.0; // engine CPU calibration constant

    let n = 16_384u64;
    let mut ctx = ExecContext::new(spec.clone());
    let keys = Workload::new(104).shuffled_keys(n as usize);
    let rel = ctx.relation_from_keys("U", &keys, 8);
    let (_, stats) = ctx.measure(|c| ops::sort::quick_sort(c, &rel));
    let measured_total = stats.total_ns(per_op_ns);

    let pattern = ops::sort::quick_sort_pattern(rel.region());
    let cpu = CpuCost::per_op(per_op_ns);
    let predicted_total = model.total_ns(&pattern, cpu, ops::sort::quick_sort_expected_ops(n));

    let ratio = predicted_total / measured_total;
    assert!((0.5..2.0).contains(&ratio), "time ratio {ratio}");
}

#[test]
fn join_planner_ranks_algorithms_like_measurements() {
    // The optimizer use-case: on a table far exceeding the cache, the
    // model must rank merge-join (pre-sorted) < partitioned hash-join <
    // plain hash-join < nested-loop, matching measured charged time.
    let spec = presets::tiny_full_assoc();
    let model = CostModel::new(spec.clone());
    let n = 4096u64;
    let (uk, vk) = Workload::new(105).join_pair(n as usize);
    let sorted: Vec<u64> = (0..n).collect();

    // Measured charged ns per algorithm.
    let measure_alg = |alg: &str| -> f64 {
        let mut ctx = ExecContext::new(spec.clone());
        match alg {
            "merge" => {
                let u = ctx.relation_from_keys("U", &sorted, 8);
                let v = ctx.relation_from_keys("V", &sorted, 8);
                let (_, s) = ctx.measure(|c| ops::merge_join::merge_join(c, &u, &v, "W", 16));
                s.mem.clock_ns
            }
            "hash" => {
                let u = ctx.relation_from_keys("U", &uk, 8);
                let v = ctx.relation_from_keys("V", &vk, 8);
                let (_, s) = ctx.measure(|c| ops::hash::hash_join(c, &u, &v, "W", 16));
                s.mem.clock_ns
            }
            "part" => {
                let u = ctx.relation_from_keys("U", &uk, 8);
                let v = ctx.relation_from_keys("V", &vk, 8);
                let (_, s) =
                    ctx.measure(|c| ops::part_hash_join::part_hash_join(c, &u, &v, 32, "W", 16));
                s.mem.clock_ns
            }
            "nl" => {
                // Nested loop is quadratic: measure at n/16 and scale by
                // 256 (cost is inner-sweep dominated).
                let small = (n / 16) as usize;
                let u = ctx.relation_from_keys("U", &uk[..small], 8);
                let v = ctx.relation_from_keys("V", &vk[..small], 8);
                let (_, s) = ctx.measure(|c| ops::nl_join::nested_loop_join(c, &u, &v, "W", 16));
                s.mem.clock_ns * 256.0
            }
            _ => unreachable!(),
        }
    };

    // Predicted T_mem per algorithm.
    let u = Region::new("U", n, 8);
    let v = Region::new("V", n, 8);
    let w = Region::new("W", n, 16);
    let h = Region::new("H", (2 * n).next_power_of_two(), 16);
    let up = Region::new("Up", n, 8);
    let vp = Region::new("Vp", n, 8);
    let predict = |alg: &str| -> f64 {
        match alg {
            "merge" => model.mem_ns(&ops::merge_join::merge_join_pattern(&u, &v, &w)),
            "hash" => model.mem_ns(&ops::hash::hash_join_pattern(&u, &v, &h, &w)),
            "part" => model.mem_ns(&ops::part_hash_join::part_hash_join_pattern(
                &u, &v, &w, 32, &up, &vp,
            )),
            "nl" => model.mem_ns(&ops::nl_join::nested_loop_join_pattern(&u, &v, &w)),
            _ => unreachable!(),
        }
    };

    let algs = ["merge", "part", "hash", "nl"];
    let measured: Vec<f64> = algs.iter().map(|a| measure_alg(a)).collect();
    let predicted: Vec<f64> = algs.iter().map(|a| predict(a)).collect();

    // Both rankings: merge < part < hash < nl.
    for i in 0..algs.len() - 1 {
        assert!(
            measured[i] < measured[i + 1],
            "measured order broken at {}: {measured:?}",
            algs[i]
        );
        assert!(
            predicted[i] < predicted[i + 1],
            "predicted order broken at {}: {predicted:?}",
            algs[i]
        );
    }
}

#[test]
fn aggregation_hash_vs_sort_winner() {
    // Few groups: the hash table stays cached and hashing beats sort
    // both measured and predicted.
    let spec = presets::tiny_full_assoc();
    let model = CostModel::new(spec.clone());
    let n = 8192u64;
    let groups = 64u64;

    let keys = Workload::new(106).uniform_keys_bounded(n as usize, groups);
    let mut ctx = ExecContext::new(spec.clone());
    let input = ctx.relation_from_keys("U", &keys, 8);
    let (_, hash_stats) = ctx.measure(|c| ops::aggregate::hash_group_count(c, &input, "G"));

    let mut ctx2 = ExecContext::new(spec.clone());
    let input2 = ctx2.relation_from_keys("U", &keys, 8);
    let (_, sort_stats) = ctx2.measure(|c| ops::aggregate::sort_dedup(c, &input2, "D"));

    assert!(hash_stats.mem.clock_ns < sort_stats.mem.clock_ns);

    let u = Region::new("U", n, 8);
    let h = Region::new("H", (2 * groups).next_power_of_two(), 16);
    let w = Region::new("W", groups, 16);
    let hash_pred = model.mem_ns(&ops::aggregate::hash_group_pattern(&u, &h, &w));
    let sort_pred = model.mem_ns(&ops::aggregate::sort_dedup_pattern(&u, &w));
    assert!(hash_pred < sort_pred);
}
