//! The paper's loop, closed on the actual machine
//! (calibrate → model → measure):
//!
//! 1. **Calibrate** the host with real pointer chases and sweeps
//!    ([`gcm_calibrate::calibrate_host`]) and instantiate a
//!    [`HardwareSpec`](gcm_hardware::HardwareSpec) from the detected
//!    parameters (§2.3: "adaptation of the model to a specific hardware
//!    is done by instantiating the parameters").
//! 2. **Model**: price a query plan's compound access pattern with
//!    [`gcm_core::CostModel`] on that spec (`T_mem`, Eq 3.1), plus the
//!    natively calibrated per-op CPU charge (`T_cpu`, Eq 6.1 via
//!    [`CpuCost::eq61_ns`]).
//! 3. **Measure**: execute the same plan on the native backend — real
//!    buffers, wall clock — and compare.
//!
//! ## Bounds (explicit and documented)
//!
//! Wall-clock measurements on a shared, possibly virtualized CI machine
//! include host-side oracle passes, allocator work, and scheduling
//! noise that neither the model nor the simulator prices, and the
//! timing-only calibration cannot see line sizes. The *enforced*
//! assertion pins predicted and measured totals within a factor of
//! [`GENEROUS_BOUND`] (10×) of each other — tightened from the
//! pre-kernel 25× now that (a) calibration also recovers the host TLB
//! and per-level sustained bandwidths and (b) the prediction prices the
//! pattern through the bandwidth-overlap extension of Eq 6.1, which
//! matches what the vectorized/prefetched kernels actually achieve.
//! The `#[ignore]`d strict variant tightens this to [`STRICT_BOUND`]
//! (4×) for runs on a quiet machine
//! (`cargo test --release -- --ignored native_strict`); observed
//! release-mode ratios on a quiet host are ~0.3–0.6 (residual
//! underprediction comes from the host-side cardinality-oracle passes
//! and output allocation, which the pattern language deliberately does
//! not describe).

use gcm_calibrate::calibrate_host;
use gcm_core::{CostModel, CpuCost, OverlapParams};
use gcm_engine::native::calibrate_per_op_ns;
use gcm_engine::plan::{run_on, PhysicalPlan, TableDef};
use gcm_engine::planner::JoinAlgorithm;
use gcm_engine::{ExecContext, MemoryBackend, NativeBackend};
use gcm_workload::Workload;

/// Enforced predicted/measured agreement factor (see module docs).
const GENEROUS_BOUND: f64 = 10.0;

/// Strict agreement factor for quiet machines (`--ignored`).
const STRICT_BOUND: f64 = 4.0;

/// Calibration sweep ceiling: past the LLC of anything we run on in CI.
const CAL_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// Residual serialization factor of the overlap prediction: the native
/// kernels overlap memory and compute well on dense scans but the
/// per-tuple operator glue still serializes part of the work.
const ALPHA: f64 = 1.0;

fn host_model() -> (CostModel, OverlapParams) {
    let report = calibrate_host(CAL_MAX_BYTES);
    let spec = report
        .to_spec("host (calibrated)", 1_000.0)
        .expect("calibrated parameters form a valid spec");
    (CostModel::new(spec), report.overlap_params(ALPHA))
}

fn star_tables(seed: u64, fact_n: usize, dim_n: usize) -> Vec<TableDef> {
    let star = Workload::new(seed).star_scenario(fact_n, dim_n, 1);
    vec![
        TableDef::new("F", star.fact, 8),
        TableDef::new("D", star.dims[0].clone(), 8),
    ]
}

/// Predicted vs native-measured total for one plan, returning
/// `(predicted_ns, measured_ns)`.
fn predict_and_measure(
    model: &CostModel,
    ov: &OverlapParams,
    per_op_ns: f64,
    plan: &PhysicalPlan,
    tables: &[TableDef],
) -> (f64, f64) {
    let mut ctx = ExecContext::native();
    let (run, stats) = run_on(&mut ctx, plan, tables).expect("plan executes");
    // The execution-provided oracle: the compound pattern with actual
    // cardinalities, priced on the calibrated model through the
    // bandwidth-overlap extension of Eq 6.1 (sequential misses at the
    // calibrated sustained bandwidths; `α`-weighted overlap of the
    // memory and CPU terms).
    let predicted = model
        .overlap_ns(&run.pattern, CpuCost::per_op(per_op_ns), stats.ops, ov)
        .total_ns;
    let measured = NativeBackend::elapsed_ns(&stats.mem);
    assert!(run.output.n() > 0, "plan must produce rows");
    assert!(measured > 0.0, "wall clock must advance");
    (predicted, measured)
}

fn check_plans(bound: f64) {
    let (model, ov) = host_model();
    let per_op = calibrate_per_op_ns();
    let tables = star_tables(42, 60_000, 6_000);
    let plans = [
        (
            "scan+select",
            PhysicalPlan::scan(0).select_lt(3_000).group_count(),
        ),
        (
            "hash join",
            PhysicalPlan::scan(0)
                .select_lt(4_000)
                .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
                .group_count(),
        ),
        (
            "partitioned hash join",
            PhysicalPlan::scan(0)
                .join_with(
                    PhysicalPlan::scan(1),
                    JoinAlgorithm::PartitionedHash { m: 16 },
                )
                .group_count(),
        ),
    ];
    for (name, plan) in plans {
        let (predicted, measured) = predict_and_measure(&model, &ov, per_op, &plan, &tables);
        let ratio = predicted / measured;
        eprintln!(
            "{name}: predicted {predicted:.0} ns, measured {measured:.0} ns, ratio {ratio:.3}"
        );
        assert!(
            (1.0 / bound..bound).contains(&ratio),
            "{name}: predicted {predicted:.0} ns vs native-measured {measured:.0} ns \
             (ratio {ratio:.3}, documented bound {bound}×)"
        );
    }
}

/// The enforced calibrate → model → native-execute validation: every
/// plan's calibrated-model prediction lands within [`GENEROUS_BOUND`]
/// of its native-measured wall time.
#[test]
fn calibrated_model_predicts_native_walls_within_generous_bound() {
    check_plans(GENEROUS_BOUND);
}

/// Strict-timing variant, `#[ignore]`d so a loaded CI box cannot flake
/// the suite; run on a quiet machine with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "strict timing: run on a quiet machine"]
fn native_strict_calibrated_model_within_8x() {
    check_plans(STRICT_BOUND);
}

/// The relative claim that survives any amount of constant-factor noise:
/// the calibrated model must *rank* plans the way the real machine does
/// when the difference is structural (quadratic nested-loop vs hash).
#[test]
fn calibrated_model_ranks_join_algorithms_like_the_machine() {
    let (model, ov) = host_model();
    let per_op = calibrate_per_op_ns();
    let tables = star_tables(7, 6_000, 1_500);
    let nl = PhysicalPlan::scan(0)
        .select_lt(750)
        .join_with(PhysicalPlan::scan(1), JoinAlgorithm::NestedLoop);
    let hash = PhysicalPlan::scan(0)
        .select_lt(750)
        .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash);
    let (p_nl, m_nl) = predict_and_measure(&model, &ov, per_op, &nl, &tables);
    let (p_hash, m_hash) = predict_and_measure(&model, &ov, per_op, &hash, &tables);
    assert!(
        p_nl > p_hash,
        "model must rank hash below nested-loop: {p_hash:.0} vs {p_nl:.0}"
    );
    assert!(
        m_nl > m_hash,
        "machine must agree with the ranking: {m_hash:.0} vs {m_nl:.0}"
    );
}
