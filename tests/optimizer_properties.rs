//! Property: across seeded random star scenarios, the whole-plan
//! optimizer's chosen plan — executed for real on the simulator — is
//! never worse than a small constant factor of the best enumerated
//! alternative. (The model may mis-rank near-ties; it must not pick a
//! loser.)

use gcm::core::{CostModel, CpuCost};
use gcm::engine::plan::{execute, LogicalPlan, Optimizer, TableStats};
use gcm::engine::planner::DEFAULT_PLANNER_PER_OP_NS;
use gcm::engine::ExecContext;
use gcm::hardware::presets;
use gcm::workload::Workload;
use proptest::prelude::*;

/// The chosen plan may be at most this factor slower than the measured
/// best enumerated plan.
const NEAR_BEST_FACTOR: f64 = 2.0;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chosen_plan_is_near_best(
        seed in 0u64..1_000_000,
        fact_n in 512usize..=1024,
        dim_n in 128usize..=384,
        sel_pct in 25u64..=100,
    ) {
        // Full associativity keeps conflict misses (which the model
        // deliberately ignores) out of the comparison.
        let spec = presets::tiny_full_assoc();
        let model = CostModel::new(spec.clone());
        let star = Workload::new(seed).star_scenario(fact_n, dim_n, 2);
        let threshold = star.threshold(sel_pct as f64 / 100.0);

        let logical = LogicalPlan::scan(0)
            .select_lt(threshold)
            .join(LogicalPlan::scan(1))
            .join(LogicalPlan::scan(2))
            .group_count();
        let stats = [
            TableStats::uniform(fact_n as u64, 8, dim_n as u64, false),
            TableStats::key_column(dim_n as u64, 8, false),
            TableStats::key_column(dim_n as u64, 8, false),
        ];
        let plans = Optimizer::new(&model)
            .with_cpu(CpuCost::default_planner())
            .with_beam(6)
            .enumerate(&logical, &stats)
            .expect("plans enumerate");
        prop_assert!(plans.len() >= 2, "need alternatives, got {}", plans.len());

        let mut measured = Vec::new();
        let mut outputs = Vec::new();
        for planned in &plans {
            let mut ctx = ExecContext::new(spec.clone());
            let tables = [
                ctx.relation_from_keys("F", &star.fact, 8),
                ctx.relation_from_keys("D1", &star.dims[0], 8),
                ctx.relation_from_keys("D2", &star.dims[1], 8),
            ];
            let mut out_n = 0;
            let (_, stats) = ctx.measure(|c| {
                out_n = execute(c, &planned.plan, &tables).expect("plan executes").output.n();
            });
            measured.push(stats.total_ns(DEFAULT_PLANNER_PER_OP_NS));
            outputs.push(out_n);
        }

        // All alternatives compute the same result cardinality.
        for (o, p) in outputs.iter().zip(&plans) {
            prop_assert_eq!(*o, outputs[0], "result mismatch for {}", p.plan);
        }

        // The chosen plan (index 0: cheapest predicted) is near-best.
        let chosen = measured[0];
        let best = measured.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(
            chosen <= NEAR_BEST_FACTOR * best,
            "seed {}: chosen {} measured {:.0} ns, but best is {:.0} ns",
            seed, plans[0].plan, chosen, best
        );
    }

    /// Zipf-skewed fact tables: the optimizer must stay near-best when
    /// foreign keys pile onto a few hot dimension keys (duplicate-heavy
    /// inputs stress both the distinct estimates and, in the parallel
    /// executor, partition balance).
    #[test]
    fn chosen_plan_is_near_best_under_key_skew(
        seed in 0u64..1_000_000,
        fact_n in 512usize..=1024,
        dim_n in 128usize..=384,
        theta_tenths in 8u64..=16,
    ) {
        let spec = presets::tiny_full_assoc();
        let model = CostModel::new(spec.clone());
        let star = Workload::new(seed).skewed_star_scenario(
            fact_n, dim_n, 2, theta_tenths as f64 / 10.0,
        );
        let threshold = star.threshold(0.75);

        let logical = LogicalPlan::scan(0)
            .select_lt(threshold)
            .join(LogicalPlan::scan(1))
            .join(LogicalPlan::scan(2))
            .group_count();
        // Honest logical statistics for the skewed column: the distinct
        // count comes from the data, not the uniform-occupancy formula.
        let fact_distinct = {
            let mut seen = std::collections::HashSet::new();
            star.fact.iter().filter(|k| seen.insert(**k)).count() as f64
        };
        let mut fact_stats = TableStats::uniform(fact_n as u64, 8, dim_n as u64, false);
        fact_stats.distinct = fact_distinct;
        let stats = [
            fact_stats,
            TableStats::key_column(dim_n as u64, 8, false),
            TableStats::key_column(dim_n as u64, 8, false),
        ];
        let plans = Optimizer::new(&model)
            .with_beam(6)
            .enumerate(&logical, &stats)
            .expect("plans enumerate");
        prop_assert!(plans.len() >= 2);

        let mut measured = Vec::new();
        let mut outputs = Vec::new();
        for planned in &plans {
            let mut ctx = ExecContext::new(spec.clone());
            let tables = [
                ctx.relation_from_keys("F", &star.fact, 8),
                ctx.relation_from_keys("D1", &star.dims[0], 8),
                ctx.relation_from_keys("D2", &star.dims[1], 8),
            ];
            let mut out_n = 0;
            let (_, stats) = ctx.measure(|c| {
                out_n = execute(c, &planned.plan, &tables).expect("plan executes").output.n();
            });
            measured.push(stats.total_ns(DEFAULT_PLANNER_PER_OP_NS));
            outputs.push(out_n);
        }
        for (o, p) in outputs.iter().zip(&plans) {
            prop_assert_eq!(*o, outputs[0], "result mismatch for {}", p.plan);
        }
        let chosen = measured[0];
        let best = measured.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(
            chosen <= NEAR_BEST_FACTOR * best,
            "seed {} (skewed): chosen {} measured {:.0} ns, best {:.0} ns",
            seed, plans[0].plan, chosen, best
        );
    }
}
