//! Plan-cache correctness properties (the gcm-service caching layer):
//!
//! * a cache hit returns exactly what a fresh optimization would have
//!   produced (same physical plan, same predicted cost, same pattern);
//! * statistics drift past the catalog threshold forces
//!   re-optimization, small drift does not;
//! * concurrent lookups of one key from the executor pool neither
//!   deadlock nor double-optimize (single optimizer invocation per
//!   key, asserted via the cache's run counter).

use gcm::core::CostModel;
use gcm::engine::plan::{optimize_and_lower, LogicalPlan, StatsCatalog, TableStats};
use gcm::hardware::presets;
use gcm::service::{PlanCache, QueryService};
use gcm::workload::Workload;
use proptest::prelude::*;
use std::sync::Arc;

/// A random star-ish logical plan over two tables plus matching stats.
fn scenario(seed: u64) -> (LogicalPlan, Vec<TableStats>) {
    let mut wl = Workload::new(seed);
    let dim_n = 200 + wl.uniform_keys_bounded(1, 800)[0];
    let fact_n = dim_n * (2 + wl.uniform_keys_bounded(1, 6)[0]);
    let threshold = 1 + wl.uniform_keys_bounded(1, dim_n)[0];
    let sorted = wl.uniform_keys_bounded(1, 2)[0] == 0;
    let base = LogicalPlan::scan(0)
        .select_lt(threshold)
        .join(LogicalPlan::scan(1));
    let plan = match wl.uniform_keys_bounded(1, 3)[0] {
        0 => base.group_count(),
        1 => base.sort(),
        _ => base.dedup(),
    };
    let stats = vec![
        TableStats::uniform(fact_n, 8, dim_n, false),
        TableStats::key_column(dim_n, 8, sorted),
    ];
    (plan, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Hits are indistinguishable from a fresh optimization.
    #[test]
    fn cache_hits_return_byte_identical_plans(seed in 0u64..1_000) {
        let model = CostModel::new(presets::tiny_smp(2));
        let (plan, stats) = scenario(seed);
        let cache = PlanCache::new();
        let key = (plan.fingerprint(), 0);
        let cached = cache
            .get_or_optimize(key, &plan, || optimize_and_lower(&model, &plan, &stats))
            .unwrap();
        let hit = cache
            .get_or_optimize(key, &plan, || panic!("hit must not optimize"))
            .unwrap();
        let fresh = optimize_and_lower(&model, &plan, &stats).unwrap();
        // The hit is the cached object itself...
        prop_assert!(Arc::ptr_eq(&cached, &hit));
        // ...and the cached object equals a fresh optimization bit for
        // bit: same physical plan, same predicted numbers, same
        // composed pattern (region identities are fresh per run, so
        // compare the rendered pattern).
        prop_assert_eq!(&fresh.plan, &hit.plan);
        prop_assert_eq!(fresh.mem_ns, hit.mem_ns);
        prop_assert_eq!(fresh.cpu_ns, hit.cpu_ns);
        prop_assert_eq!(fresh.ops, hit.ops);
        prop_assert_eq!(fresh.pattern.to_string(), hit.pattern.to_string());
        prop_assert_eq!(cache.optimizer_runs(), 1);
    }

    /// (b) Epoch bumps — and only epoch bumps — force re-optimization.
    #[test]
    fn drift_past_threshold_forces_reoptimization(seed in 0u64..1_000) {
        let model = CostModel::new(presets::tiny_smp(2));
        let (plan, stats) = scenario(seed);
        let catalog = StatsCatalog::new(stats);
        let cache = PlanCache::new();
        let lookup = |cache: &PlanCache, catalog: &StatsCatalog| {
            // One transactional read pairs the epoch with the stats the
            // optimizer sees — a mid-lookup drift update cannot tear it.
            let snap = catalog.snapshot();
            cache
                .get_or_optimize((plan.fingerprint(), snap.epoch()), &plan, || {
                    optimize_and_lower(&model, &plan, snap.tables())
                })
                .unwrap()
        };
        lookup(&cache, &catalog);
        prop_assert_eq!(cache.optimizer_runs(), 1);
        // A +10% refresh stays under the 20% threshold: same epoch,
        // cached plan reused.
        let t0 = catalog.snapshot().tables()[0].clone();
        let small = TableStats::uniform(t0.n + t0.n / 10, t0.w, t0.key_bound, t0.sorted);
        prop_assert!(!catalog.update(0, small));
        lookup(&cache, &catalog);
        prop_assert_eq!(cache.optimizer_runs(), 1);
        // A 3× blowup drifts past it: new epoch, fresh optimization.
        let t0 = catalog.snapshot().tables()[0].clone();
        let big = TableStats::uniform(t0.n * 3, t0.w, t0.key_bound, t0.sorted);
        prop_assert!(catalog.update(0, big));
        lookup(&cache, &catalog);
        prop_assert_eq!(cache.optimizer_runs(), 2);
        // Retiring the stale epoch leaves exactly the live entry.
        cache.retire_epochs_before(catalog.epoch());
        prop_assert_eq!(cache.len(), 1);
    }
}

/// (c) Concurrent lookups of the same key: one optimizer run, no
/// deadlock, everyone shares the published plan.
#[test]
fn concurrent_lookups_never_double_optimize() {
    let model = CostModel::new(presets::tiny_smp(4));
    let (plan, stats) = scenario(7);
    let cache = Arc::new(PlanCache::new());
    let key = (plan.fingerprint(), 0);
    let plans: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let (model, plan, stats) = (&model, &plan, &stats);
                s.spawn(move || {
                    cache
                        .get_or_optimize(key, plan, || {
                            // Widen the race window: the first thread
                            // holds the slot while the others arrive.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            optimize_and_lower(model, plan, stats)
                        })
                        .unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no deadlock, no panic"))
            .collect()
    });
    assert_eq!(cache.optimizer_runs(), 1, "exactly one optimization");
    assert_eq!(cache.hits() + cache.misses(), 8);
    for p in &plans[1..] {
        assert!(Arc::ptr_eq(&plans[0], p), "all callers share one plan");
    }
    // Distinct keys optimize independently (and still exactly once).
    let (other, other_stats) = scenario(8);
    let other_key = (other.fingerprint(), 0);
    assert_ne!(key, other_key);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let (model, other, other_stats) = (&model, &other, &other_stats);
            s.spawn(move || {
                cache
                    .get_or_optimize(other_key, other, || {
                        optimize_and_lower(model, other, other_stats)
                    })
                    .unwrap();
            });
        }
    });
    assert_eq!(cache.optimizer_runs(), 2);
}

/// (d) 8-thread stress on the trie-backed cache with inserts, lookups,
/// and epoch retirement racing: the outcome must be *linearizable* —
/// every lookup of a live key returns the one published plan for it,
/// per-key optimization counts stay exact (1 for never-retired keys,
/// ≥ 1 for keys raced by the retirer), and the global counters balance.
#[test]
fn concurrent_insert_lookup_retire_linearizes() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let model = CostModel::new(presets::tiny_smp(4));
    let scenarios: Vec<_> = (0..4).map(|i| scenario(100 + i)).collect();
    let cache = Arc::new(PlanCache::new());
    // Per-(plan, epoch) optimizer-run counts, indexed [plan][epoch].
    let runs: Vec<[AtomicU64; 2]> = (0..4)
        .map(|_| [AtomicU64::new(0), AtomicU64::new(0)])
        .collect();
    const ROUNDS: usize = 40;
    std::thread::scope(|s| {
        for t in 0..8 {
            let cache = Arc::clone(&cache);
            let (model, scenarios, runs) = (&model, &scenarios, &runs);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let i = (t + r) % scenarios.len();
                    let epoch = ((t / 2 + r) % 2) as u64;
                    let (plan, stats) = &scenarios[i];
                    let got = cache
                        .get_or_optimize((plan.fingerprint(), epoch), plan, || {
                            runs[i][epoch as usize].fetch_add(1, Ordering::Relaxed);
                            optimize_and_lower(model, plan, stats)
                        })
                        .unwrap();
                    // Any published plan for this key is the right one.
                    let fresh = optimize_and_lower(model, plan, stats).unwrap();
                    assert_eq!(fresh.plan, got.plan);
                    assert_eq!(fresh.mem_ns, got.mem_ns);
                }
            });
        }
        // The retirer races everyone: epoch-0 entries keep getting
        // dropped mid-flight, epoch-1 entries must never be touched.
        let cache = Arc::clone(&cache);
        s.spawn(move || {
            for _ in 0..20 {
                cache.retire_epochs_before(1);
                std::thread::yield_now();
            }
        });
    });
    // Counters balance: every lookup was a hit or a miss, every miss ran
    // the optimizer exactly once, and the per-key counts add up.
    assert_eq!(cache.hits() + cache.misses(), (8 * ROUNDS) as u64);
    let total_runs: u64 = runs
        .iter()
        .flat_map(|by_epoch| by_epoch.iter())
        .map(|c| c.load(Ordering::Relaxed))
        .sum();
    assert_eq!(cache.optimizer_runs(), total_runs);
    assert_eq!(cache.misses(), total_runs);
    for by_epoch in &runs {
        // Epoch-1 keys survive every retirement: exactly one run each.
        assert_eq!(by_epoch[1].load(Ordering::Relaxed), 1);
        // Epoch-0 keys may be retired and re-optimized, never skipped.
        assert!(by_epoch[0].load(Ordering::Relaxed) >= 1);
    }
    // A final retirement leaves exactly the four epoch-1 entries.
    cache.retire_epochs_before(1);
    assert_eq!(cache.len(), 4);
}

/// (e) Build-side sharing is invisible in the results: a service where
/// later queries reuse the first query's hash-join build produces
/// byte-identical output (same FNV over the output relation's bytes) to
/// fresh one-query-per-service runs where sharing cannot engage.
#[test]
fn shared_builds_keep_results_byte_identical() {
    // Sized so the optimizer picks a plain hash join on the modern SMP
    // (the shape the registry shares); cuts vary the probe input only.
    let cuts = [120u64, 180, 240, 300, 360];
    let mut wl = Workload::new(314);
    let star = wl.star_scenario(8_000, 1_000, 1);
    let query = |cut: u64| {
        LogicalPlan::scan(0)
            .select_lt(cut)
            .join(LogicalPlan::scan(1))
            .group_count()
    };

    // Control: each query alone in a fresh service — the single
    // submission is the build's first requester, so it keeps its
    // charged build phase and nothing is reused.
    let control: Vec<(u64, u64)> = cuts
        .iter()
        .map(|&cut| {
            let mut svc = QueryService::new(presets::modern_smp(4));
            svc.register_table("F", star.fact.clone(), 8);
            svc.register_table("D", star.dims[0].clone(), 8);
            svc.submit(query(cut)).unwrap();
            svc.run().unwrap();
            let m = svc.metrics();
            assert_eq!(m.builds_reused, 0, "a lone query cannot reuse");
            (m.queries[0].output_n, m.queries[0].output_hash)
        })
        .collect();

    // Shared: all five queries through one service. The first
    // submission registers the dim build, the other four reuse it.
    let mut svc = QueryService::new(presets::modern_smp(4));
    svc.register_table("F", star.fact.clone(), 8);
    svc.register_table("D", star.dims[0].clone(), 8);
    let ids: Vec<u64> = cuts
        .iter()
        .map(|&c| svc.submit(query(c)).unwrap())
        .collect();
    svc.run().unwrap();
    let m = svc.metrics();
    assert_eq!(m.builds_built, 1, "one build per (table, epoch)");
    assert!(
        m.builds_reused >= cuts.len() as u64 - 1,
        "later queries must reuse: {} reuses",
        m.builds_reused
    );
    for (i, id) in ids.iter().enumerate() {
        let q = m.queries.iter().find(|q| q.id == *id).unwrap();
        assert_eq!(q.output_n, control[i].0, "cardinality (cut {})", cuts[i]);
        assert_eq!(
            q.output_hash, control[i].1,
            "bytes must be identical with and without sharing (cut {})",
            cuts[i]
        );
    }
}

/// The service end of the same guarantees: repeated submissions of one
/// plan shape optimize once, across executor-pool activity.
#[test]
fn service_submissions_share_cached_plans() {
    let mut svc = QueryService::new(presets::tiny_smp(4));
    let mut wl = Workload::new(91);
    let star = wl.star_scenario(2_000, 400, 1);
    svc.register_table("F", star.fact, 8);
    svc.register_table("D", star.dims[0].clone(), 8);
    let q = LogicalPlan::scan(0)
        .select_lt(200)
        .join(LogicalPlan::scan(1))
        .group_count();
    for _ in 0..6 {
        svc.submit(q.clone()).unwrap();
    }
    svc.run().unwrap();
    let m = svc.metrics().clone();
    assert_eq!(m.optimizer_runs, 1);
    assert_eq!(m.queries.len(), 6);
    // Identical queries produce identical results wherever they ran.
    let n0 = m.queries[0].output_n;
    assert!(m.queries.iter().all(|qr| qr.output_n == n0));
}
