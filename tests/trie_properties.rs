//! TrieMap correctness properties (the concurrent snapshot map under
//! the plan cache, stats catalog, and build registry):
//!
//! * sequential model-equivalence: any interleaving of insert / remove /
//!   update / get behaves exactly like `HashMap`;
//! * snapshots are immutable: a snapshot taken before a burst of writes
//!   still reads the old version, entry for entry;
//! * 8+-thread stress: concurrent inserts, lookups, snapshot iteration,
//!   and retirement (`retain`) neither lose published entries nor
//!   resurrect removed ones, and disjoint writers all land.

use gcm::trie::TrieMap;
use gcm::workload::Workload;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every operation sequence agrees with the `HashMap` model.
    #[test]
    fn model_equivalence_with_hashmap(seed in 0u64..10_000) {
        let mut wl = Workload::new(seed);
        let ops = wl.uniform_keys_bounded(300, 4)
            .into_iter()
            .zip(wl.uniform_keys_bounded(300, 64))
            .zip(wl.uniform_keys_bounded(300, 1_000));
        let trie: TrieMap<u64, u64> = TrieMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for ((op, key), val) in ops {
            match op {
                0 => prop_assert_eq!(trie.insert(key, val), model.insert(key, val)),
                1 => prop_assert_eq!(trie.remove(&key), model.remove(&key)),
                2 => {
                    // update: increment if present (CAS-style
                    // read-modify-write; returns the previous value).
                    let got = trie.update(key, |old| old.map(|v| v + 1));
                    let prev = model.get(&key).copied();
                    if let Some(p) = prev {
                        model.insert(key, p + 1);
                    }
                    prop_assert_eq!(got, prev);
                }
                _ => prop_assert_eq!(trie.get(&key), model.get(&key).copied()),
            }
            prop_assert_eq!(trie.len(), model.len());
        }
        // Full-content agreement, via the snapshot iterator.
        let snap = trie.snapshot();
        let mut seen: Vec<(u64, u64)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
        seen.sort_unstable();
        let mut want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        want.sort_unstable();
        prop_assert_eq!(seen, want);
    }

    /// A snapshot is a frozen version: later writes never show through.
    #[test]
    fn snapshots_are_immutable(seed in 0u64..10_000) {
        let mut wl = Workload::new(seed);
        let keys = wl.uniform_keys_bounded(200, 500);
        let trie: TrieMap<u64, u64> = TrieMap::new();
        for (i, &k) in keys.iter().enumerate() {
            trie.insert(k, i as u64);
        }
        let before = trie.snapshot();
        let frozen: Vec<(u64, u64)> = {
            let mut v: Vec<_> = before.iter().map(|(k, v)| (*k, *v)).collect();
            v.sort_unstable();
            v
        };
        let frozen_len = before.len();
        // A burst of overwrites, removals, and fresh inserts.
        for &k in &keys {
            trie.insert(k, u64::MAX);
        }
        for &k in keys.iter().step_by(3) {
            trie.remove(&k);
        }
        trie.insert(1_000_000, 7);
        // The old version still reads exactly as frozen.
        prop_assert_eq!(before.len(), frozen_len);
        let mut again: Vec<(u64, u64)> = before.iter().map(|(k, v)| (*k, *v)).collect();
        again.sort_unstable();
        prop_assert_eq!(again, frozen);
        prop_assert_eq!(before.get(&1_000_000), None);
    }
}

/// Disjoint concurrent writers all land; readers and snapshot iterators
/// race them without ever seeing a torn or impossible state.
#[test]
fn concurrent_writers_readers_and_snapshots() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 500;
    let trie: Arc<TrieMap<u64, u64>> = Arc::new(TrieMap::new());
    std::thread::scope(|s| {
        // 8 writers on disjoint key ranges.
        for w in 0..WRITERS {
            let trie = Arc::clone(&trie);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    let k = w * PER_WRITER + i;
                    trie.insert(k, k * 2);
                }
            });
        }
        // 4 readers validating every value they manage to observe.
        for r in 0..4 {
            let trie = Arc::clone(&trie);
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let k = (r * 997 + i * 13) % (WRITERS * PER_WRITER);
                    if let Some(v) = trie.get(&k) {
                        assert_eq!(v, k * 2, "torn value for key {k}");
                    }
                }
            });
        }
        // 2 snapshot iterators: every entry internally consistent, and
        // lengths monotone within one frozen version.
        for _ in 0..2 {
            let trie = Arc::clone(&trie);
            s.spawn(move || {
                for _ in 0..20 {
                    let snap = trie.snapshot();
                    let n = snap.iter().count();
                    assert_eq!(n, snap.len(), "iterator disagrees with len");
                    for (k, v) in snap.iter() {
                        assert_eq!(*v, *k * 2, "torn entry in snapshot");
                    }
                    std::thread::yield_now();
                }
            });
        }
    });
    // Every write landed.
    assert_eq!(trie.len(), (WRITERS * PER_WRITER) as usize);
    for k in 0..WRITERS * PER_WRITER {
        assert_eq!(trie.get(&k), Some(k * 2), "lost write {k}");
    }
}

/// Retirement (`retain`) racing inserts: entries the predicate keeps are
/// never lost, entries it drops never resurrect *for the retired
/// epoch*, and the map converges to exactly the live set.
#[test]
fn concurrent_retain_never_loses_live_entries() {
    const N: u64 = 2_000;
    let trie: Arc<TrieMap<(u64, u64), u64>> = Arc::new(TrieMap::new());
    // Epoch-1 entries are pre-published and must survive everything.
    for i in 0..N {
        trie.insert((i, 1), i);
    }
    std::thread::scope(|s| {
        // 4 writers keep inserting epoch-0 entries (retirement fodder).
        for w in 0..4u64 {
            let trie = Arc::clone(&trie);
            s.spawn(move || {
                for i in 0..N / 4 {
                    trie.insert((w * (N / 4) + i, 0), 0);
                }
            });
        }
        // 4 retirers drop epoch-0 concurrently.
        for _ in 0..4 {
            let trie = Arc::clone(&trie);
            s.spawn(move || {
                for _ in 0..10 {
                    trie.retain(|(_, e), _| *e >= 1);
                    std::thread::yield_now();
                }
            });
        }
    });
    // One final retirement settles any epoch-0 stragglers.
    trie.retain(|(_, e), _| *e >= 1);
    assert_eq!(trie.len(), N as usize, "live epoch lost entries");
    for i in 0..N {
        assert_eq!(trie.get(&(i, 1)), Some(i), "epoch-1 entry {i} lost");
        assert_eq!(trie.get(&(i, 0)), None, "epoch-0 entry {i} resurrected");
    }
}

/// `get_or_insert_with` under contention: one value per key wins and
/// everybody reads it.
#[test]
fn concurrent_get_or_insert_agrees() {
    let trie: Arc<TrieMap<u64, u64>> = Arc::new(TrieMap::new());
    let winners: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let trie = Arc::clone(&trie);
                s.spawn(move || trie.get_or_insert_with(42, || t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let published = trie.get(&42).expect("key must exist");
    assert!(winners.iter().all(|&w| w == published), "{winners:?}");
    assert_eq!(trie.len(), 1);
}
