//! Portability: the model is machine-generic (the paper's
//! "hardware-independence", §7). These tests run the same
//! model-vs-simulator validations on the *modern commodity* preset —
//! three data-cache levels plus TLB, different line sizes and latency
//! ratios than the Origin2000 — without changing a single formula.

use gcm_bench::compare::assert_levels_close;
use gcm_bench::exec;
use gcm_core::{CostModel, Pattern, Region};
use gcm_hardware::{presets, Associativity, HardwareSpec};
use gcm_sim::MemorySystem;
use gcm_workload::Workload;

/// Fully-associative variant of the modern machine (the model predicts
/// no conflict misses; see the `ablation_assoc` bench for that error).
fn modern_fa() -> HardwareSpec {
    let base = presets::modern_commodity();
    let levels = base
        .levels()
        .iter()
        .cloned()
        .map(|mut l| {
            l.assoc = Associativity::Full;
            l
        })
        .collect();
    HardwareSpec::new("modern [FA]", base.cpu_mhz, levels).expect("valid")
}

#[test]
fn spec_has_three_cache_levels() {
    let hw = modern_fa();
    assert_eq!(hw.data_caches().count(), 3);
    assert_eq!(hw.levels().len(), 4);
}

#[test]
fn sequential_traversal_exact_on_all_four_levels() {
    let spec = modern_fa();
    let mut mem = MemorySystem::new(spec.clone());
    let (n, w) = (262_144u64, 8u64); // 2 MB: beyond L1/L2, inside L3
    let base = mem.alloc(n * w, 4096);
    let before = mem.snapshot();
    exec::s_trav(&mut mem, base, n, w, w);
    let measured = mem.delta_since(&before);
    let model = CostModel::new(spec.clone());
    let predicted = model.misses(&Pattern::s_trav(Region::new("R", n, w)));
    assert_levels_close(&spec, &measured, &predicted, 0.05, 4.0, "modern s_trav");
}

#[test]
fn random_traversal_respects_l3() {
    // 8 MB region: fits L3 (32 MB) but dwarfs L2 (1 MB). Random misses
    // must appear at L1/L2 but stay compulsory-only at L3.
    let spec = modern_fa();
    let mut mem = MemorySystem::new(spec.clone());
    let (n, w) = (1_048_576u64, 8u64);
    let perm = Workload::new(1).permutation(n as usize);
    let base = mem.alloc(n * w, 4096);
    let before = mem.snapshot();
    exec::r_trav(&mut mem, base, w, w, &perm);
    let measured = mem.delta_since(&before);
    let model = CostModel::new(spec.clone());
    let predicted = model.misses(&Pattern::r_trav(Region::new("R", n, w)));

    let l2 = spec.level_index("L2").unwrap();
    let l3 = spec.level_index("L3").unwrap();
    let m_l2 = (measured.levels[l2].seq_misses + measured.levels[l2].rand_misses) as f64;
    let m_l3 = (measured.levels[l3].seq_misses + measured.levels[l3].rand_misses) as f64;
    // L3 holds the region: one load per 64-B line.
    assert!((m_l3 - (n * w / 64) as f64).abs() < 64.0);
    assert!((predicted[l3].total() - m_l3).abs() / m_l3 < 0.05);
    // L2 thrashes: far beyond compulsory, and predicted within 25%.
    assert!(m_l2 > 3.0 * (n * w / 64) as f64);
    assert!((predicted[l2].total() - m_l2).abs() / m_l2 < 0.25);
}

#[test]
fn hash_join_cliffs_move_with_the_machine() {
    // On the modern machine the interesting hash-table boundary is L2
    // (1 MB). The model must place the per-probe L2 cliff there — a
    // different place than on the Origin2000 — with no code changes.
    let spec = modern_fa();
    let model = CostModel::new(spec.clone());
    let l2 = spec.level_index("L2").unwrap();
    let per_probe = |n: u64| {
        let h = Region::new("H", (2 * n).next_power_of_two(), 16);
        let u = Region::new("U", n, 8);
        let v = Region::new("V", n, 8);
        let w = Region::new("W", n, 16);
        let p = gcm_core::library::hash_join(u, v, h, w);
        model.misses(&p)[l2].total() / n as f64
    };
    let below = per_probe(16_384); // H = 512 KB < 1 MB L2
    let above = per_probe(262_144); // H = 8 MB > L2
    assert!(
        above > 3.0 * below,
        "modern L2 cliff: {below:.3} -> {above:.3}"
    );
}

#[test]
fn partitioning_cliff_positions_follow_the_new_geometry() {
    // Modern TLB: 1536 entries; L1: 512 lines. The first cliff is now
    // L1's, not the TLB's — opposite to the Origin2000 ordering.
    let spec = modern_fa();
    let model = CostModel::new(spec.clone());
    let l1 = spec.level_index("L1").unwrap();
    let tlb = spec.level_index("TLB").unwrap();
    let u = Region::new("U", 4_000_000, 8);
    let w = Region::new("W", 4_000_000, 8);
    let at = |m: u64, lvl: usize| {
        model.misses(&gcm_core::library::partition(u.clone(), w.clone(), m))[lvl].total()
    };
    // L1 cliffs between 256 and 2048 (512 lines)...
    assert!(at(2048, l1) > 2.0 * at(256, l1));
    // ...while the TLB is still quiet there and cliffs past 1536.
    assert!(at(1024, tlb) < 1.5 * at(256, tlb));
    assert!(at(8192, tlb) > 2.0 * at(1024, tlb));
}
