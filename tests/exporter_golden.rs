//! Exporter format goldens (ISSUE 9 satellite).
//!
//! The Prometheus text and JSON-lines exports are wire formats: a
//! scraper or log pipeline parses them byte-by-byte, so their shape
//! must not drift silently — not the label escaping, not the summary
//! series layout, not the histogram row schema. These tests pin the
//! exports byte-for-byte against hand-derived expectations (bucket
//! representatives computed from the documented log-linear layout:
//! 32 sub-buckets per octave, exact below 64).

use gcm::obs::registry::labeled;
use gcm::obs::{Histogram, MetricsRegistry, Span, SpanKind, SpanRecorder};
use gcm::service::metrics::{QUEUE_DEPTH, QUEUE_DEPTH_PEAK};
use gcm::service::{ServiceMetrics, ShedRecord};
use gcm::workload::TenantClass;

/// A registry covering every metric kind and the escaping-hostile
/// label value `a"b\c<newline>d`.
fn golden_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();
    r.inc("requests_total", 3);
    r.set_gauge(&labeled("queue_depth", &[("tenant", "a\"b\\c\nd")]), 2.0);
    for v in [37u64, 1001, 1001, 5000] {
        r.observe("lat_ns", v);
    }
    r.observe(&labeled("lat_ns", &[("op", "scan")]), 63);
    r
}

#[test]
fn prometheus_text_is_pinned_byte_for_byte() {
    // Derivation: 1001 lands in bucket [992, 1008) whose midpoint
    // representative is 1000 (rank-2 sample → p50); 5000 lands in
    // [4992, 5120) → representative 5056, clamped to the observed max
    // 5000 (p99/p999). 37 and 63 sit in exact unit buckets.
    let expected = concat!(
        "# TYPE lat_ns summary\n",
        "lat_ns{quantile=\"0.5\"} 1000\n",
        "lat_ns{quantile=\"0.99\"} 5000\n",
        "lat_ns{quantile=\"0.999\"} 5000\n",
        "lat_ns_sum 7039\n",
        "lat_ns_count 4\n",
        "# TYPE lat_ns summary\n",
        "lat_ns{op=\"scan\",quantile=\"0.5\"} 63\n",
        "lat_ns{op=\"scan\",quantile=\"0.99\"} 63\n",
        "lat_ns{op=\"scan\",quantile=\"0.999\"} 63\n",
        "lat_ns_sum{op=\"scan\"} 63\n",
        "lat_ns_count{op=\"scan\"} 1\n",
        "# TYPE queue_depth gauge\n",
        r#"queue_depth{tenant="a\"b\\c\nd"} 2"#,
        "\n",
        "# TYPE requests_total counter\n",
        "requests_total 3\n",
    );
    assert_eq!(golden_registry().to_prometheus(), expected);
}

#[test]
fn json_lines_export_is_pinned_byte_for_byte() {
    // The Prometheus-escaped label set is part of the metric *name*,
    // so the JSON encoder escapes it a second time: every `\` doubles
    // and every `"` gains a backslash.
    let expected = concat!(
        r#"{"name":"lat_ns","type":"histogram","value":{"count":4,"sum":7039,"mean":1759.750,"min":37,"max":5000,"p50":1000,"p99":5000,"p999":5000}}"#,
        "\n",
        r#"{"name":"lat_ns{op=\"scan\"}","type":"histogram","value":{"count":1,"sum":63,"mean":63,"min":63,"max":63,"p50":63,"p99":63,"p999":63}}"#,
        "\n",
        r#"{"name":"queue_depth{tenant=\"a\\\"b\\\\c\\nd\"}","type":"gauge","value":2}"#,
        "\n",
        r#"{"name":"requests_total","type":"counter","value":3}"#,
        "\n",
    );
    assert_eq!(golden_registry().to_json_lines(), expected);
}

#[test]
fn histogram_bucket_boundaries_are_pinned() {
    // Everything in [992, 1008) shares one bucket and reads back as
    // the midpoint 1000 — the documented ≤1.6% quantile error.
    let mut h = Histogram::new();
    for v in [992u64, 1001, 1007] {
        h.record(v);
    }
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 1000, "q={q}");
    }
    // 1008 starts the next bucket (representative 1016), and a lone
    // sample clamps the read to the observed max.
    let mut edge = Histogram::new();
    edge.record(1008);
    assert_eq!(edge.p50(), 1008);
    // Below 64, buckets are unit-width and exact.
    let mut small = Histogram::new();
    small.record(37);
    assert_eq!(small.p50(), 37);
    assert_eq!(small.p999(), 37);
}

/// A `ServiceMetrics` exactly as the SLO gate leaves it: per-class
/// shed counters fed through `record_shed` (the production path, so
/// the golden pins the real emission, not a hand-built mirror) plus
/// the queue-depth gauge pair the scheduler maintains.
fn shed_metrics() -> ServiceMetrics {
    let mut m = ServiceMetrics::default();
    let shed = |id: u64, class: TenantClass| ShedRecord {
        id,
        class,
        waited_ns: 1_000 * id,
        projected_ns: 9e6,
        budget_ns: 4e6,
    };
    m.record_shed(shed(1, TenantClass::PointLookup));
    for id in 2..4 {
        m.record_shed(shed(id, TenantClass::JoinHeavy));
    }
    for id in 4..8 {
        m.record_shed(shed(id, TenantClass::ScanHeavy));
    }
    m.registry.set_gauge(QUEUE_DEPTH, 3.0);
    m.registry.gauge_max(QUEUE_DEPTH_PEAK, 7.0);
    m.registry.gauge_max(QUEUE_DEPTH_PEAK, 5.0); // peak must hold
    m
}

#[test]
fn shed_and_queue_depth_prometheus_is_pinned_byte_for_byte() {
    // BTreeMap name order: the gauges sort before the labeled shed
    // family, and the class labels sort alphabetically within it. Each
    // series re-states its family `# TYPE` header.
    let expected = concat!(
        "# TYPE gcm_service_queue_depth gauge\n",
        "gcm_service_queue_depth 3\n",
        "# TYPE gcm_service_queue_depth_peak gauge\n",
        "gcm_service_queue_depth_peak 7\n",
        "# TYPE gcm_service_shed_total counter\n",
        "gcm_service_shed_total{class=\"join_heavy\"} 2\n",
        "# TYPE gcm_service_shed_total counter\n",
        "gcm_service_shed_total{class=\"point_lookup\"} 1\n",
        "# TYPE gcm_service_shed_total counter\n",
        "gcm_service_shed_total{class=\"scan_heavy\"} 4\n",
    );
    let m = shed_metrics();
    assert_eq!(m.to_prometheus(), expected);
    // The exact trace and the aggregated counters agree.
    assert_eq!(m.shed_total(), 7);
    assert_eq!(m.shed_for_class(TenantClass::ScanHeavy), 4);
}

#[test]
fn shed_and_queue_depth_json_lines_are_pinned_byte_for_byte() {
    let expected = concat!(
        r#"{"name":"gcm_service_queue_depth","type":"gauge","value":3}"#,
        "\n",
        r#"{"name":"gcm_service_queue_depth_peak","type":"gauge","value":7}"#,
        "\n",
        r#"{"name":"gcm_service_shed_total{class=\"join_heavy\"}","type":"counter","value":2}"#,
        "\n",
        r#"{"name":"gcm_service_shed_total{class=\"point_lookup\"}","type":"counter","value":1}"#,
        "\n",
        r#"{"name":"gcm_service_shed_total{class=\"scan_heavy\"}","type":"counter","value":4}"#,
        "\n",
    );
    assert_eq!(shed_metrics().to_json_lines(), expected);
}

fn span(name: &str, seq: u64) -> Span {
    Span {
        name: name.to_string(),
        kind: SpanKind::Execute,
        start_ns: seq * 10,
        end_ns: seq * 10 + 5,
        elapsed_ns: 5.0,
        accesses: 0,
        level_misses: Vec::new(),
        ops: 1,
        lane: 0,
        seq: 0,
    }
}

#[test]
fn mirrored_counters_stay_monotone_across_drain_cycles() {
    // The service idiom: harvest spans with `drain()` (destructive),
    // mirror totals into the registry with `inc`. The registry counter
    // must be monotone and exact across cycles — a drain that
    // re-delivered or lost spans would break either property.
    let recorder = SpanRecorder::new();
    let mut sink = recorder.sink();
    let registry = MetricsRegistry::new();
    let mut total = 0u64;
    for cycle in 0..3u64 {
        let produced = 4 + cycle; // vary per cycle: 4, 5, 6
        for i in 0..produced {
            sink.record(span(&format!("c{cycle}s{i}"), i));
        }
        let drained = recorder.drain();
        assert_eq!(drained.len() as u64, produced, "cycle {cycle}");
        registry.inc("spans_harvested_total", drained.len() as u64);
        registry.set_counter("spans_dropped_total", recorder.dropped());
        let before = total;
        total += produced;
        let now = registry.counter("spans_harvested_total").unwrap();
        assert_eq!(now, total);
        assert!(now >= before, "counter regressed");
    }
    // A drain with nothing new must not move the counter.
    assert!(recorder.drain().is_empty());
    registry.inc("spans_harvested_total", 0);
    assert_eq!(registry.counter("spans_harvested_total"), Some(total));
    assert_eq!(registry.counter("spans_dropped_total"), Some(0));
}
