//! End-to-end calibration loop: blind-calibrate a machine, build a spec
//! from the measurements, and check the resulting cost model agrees with
//! the true-spec model — the paper's adaptation workflow (§2.3, §7).

use gcm_calibrate::Calibrator;
use gcm_core::{library, CostModel, Region};
use gcm_hardware::presets;

#[test]
fn calibrated_model_tracks_true_model() {
    let secret = presets::tiny();
    let mut cal = Calibrator::new(secret.clone(), 128 * 1024);
    let report = cal.run();
    let calibrated = report
        .to_spec("calibrated", secret.cpu_mhz)
        .expect("valid spec");

    // Structure recovered.
    assert_eq!(calibrated.data_caches().count(), 2);
    assert_eq!(calibrated.tlbs().count(), 1);

    let truth = CostModel::new(secret);
    let guess = CostModel::new(calibrated);
    let n = 100_000u64;
    let patterns = vec![
        library::quick_sort(Region::new("U", n, 8)),
        library::merge_join(
            Region::new("U", n, 8),
            Region::new("V", n, 8),
            Region::new("W", n, 16),
        ),
        library::hash_join(
            Region::new("U", n, 8),
            Region::new("V", n, 8),
            Region::new("H", (2 * n).next_power_of_two(), 16),
            Region::new("W", n, 16),
        ),
        library::partition(Region::new("U", n, 8), Region::new("W", n, 8), 32),
    ];
    for p in patterns {
        let t = truth.mem_ns(&p);
        let g = guess.mem_ns(&p);
        let dev = (g / t - 1.0).abs();
        assert!(
            dev < 0.15,
            "calibrated model deviates {:.1}% on {p}",
            dev * 100.0
        );
    }
}

#[test]
fn calibration_is_deterministic() {
    let spec = presets::tiny();
    let r1 = Calibrator::new(spec.clone(), 128 * 1024).run();
    let r2 = Calibrator::new(spec, 128 * 1024).run();
    assert_eq!(r1, r2);
}

#[test]
fn to_spec_preserves_ordering_and_kinds() {
    let mut cal = Calibrator::new(presets::tiny(), 128 * 1024);
    let report = cal.run();
    let spec = report.to_spec("x", 100.0).unwrap();
    let caps: Vec<u64> = spec.data_caches().map(|l| l.capacity).collect();
    assert!(
        caps.windows(2).all(|w| w[0] < w[1]),
        "capacities inside-out: {caps:?}"
    );
    let tlb = spec.tlbs().next().expect("tlb present");
    assert_eq!(tlb.seq_miss_ns, tlb.rand_miss_ns);
}
