//! PMU ground-truth integration tests (ISSUE 9 tentpole).
//!
//! Drives the perf-counter path end to end through the public `gcm::`
//! surface, the way a deployment would: probe availability, attach
//! counters to a native backend, run EXPLAIN ANALYZE through the
//! service, and read the flight-recorder ring.
//!
//! Every counter assertion is gated on the host actually exposing a
//! PMU (`perf_event_paranoid` ≤ 2 or `CAP_PERFMON`, and a hypervisor
//! that virtualizes the counters). Where it does not, the tests assert
//! the **honest fallback** — no miss rows anywhere, never zeros — and
//! print a visible `SKIPPED` marker on both stdout and stderr so a CI
//! log cannot silently pass without exercising the counters.

use gcm::engine::plan::LogicalPlan;
use gcm::engine::{ExecContext, MemoryBackend, NativeBackend};
use gcm::obs::pmu::{pmu_status, PmuGroup, PmuStatus};
use gcm::service::QueryService;
use gcm::workload::Workload;

/// Visible skip marker (stdout is captured per-test, stderr survives).
fn skip(test: &str, reason: &str) {
    eprintln!("SKIPPED {test}: {reason}");
    println!("SKIPPED {test}: {reason}");
}

fn service() -> QueryService {
    let mut svc = QueryService::new(gcm::hardware::presets::tiny_smp(4));
    let mut wl = Workload::new(97);
    let star = wl.star_scenario(20_000, 2_000, 1);
    svc.register_table("F", star.fact, 8);
    svc.register_table("D", star.dims[0].clone(), 8);
    svc
}

#[test]
fn probe_and_attach_agree_on_availability() {
    // The cheap probe (`pmu_status`) and a real attach on a backend
    // must tell the same story — a probe that says "available" while
    // attach fails (or vice versa) would make every gate above a lie.
    let probed = pmu_status();
    let mut backend = NativeBackend::new();
    let attached = backend.attach_pmu();
    assert_eq!(
        probed.is_available(),
        attached.is_available(),
        "probe said {probed}, attach said {attached}"
    );
    assert_eq!(backend.pmu_attached(), attached.is_available());
    if let PmuStatus::Unavailable { reason } = &attached {
        assert!(!reason.is_empty(), "fallback must say why");
        skip("probe_and_attach_agree_on_availability", reason);
    }
    backend.detach_pmu();
    assert!(!backend.pmu_attached());
}

#[test]
fn grouped_counters_move_under_real_work() {
    match PmuGroup::standard() {
        Ok(group) => {
            group.enable();
            // Touch enough memory that instructions and cache traffic
            // are unambiguous.
            let mut acc = 0u64;
            let buf = vec![1u64; 1 << 16];
            for &v in &buf {
                acc = acc.wrapping_add(v);
            }
            assert!(acc > 0);
            let sample = group.read().expect("enabled group reads");
            assert!(
                sample.instructions > 10_000,
                "a 64k-element walk retires instructions: {sample:?}"
            );
            assert!(sample.cycles > 0, "{sample:?}");
        }
        Err(PmuStatus::Unavailable { reason }) => {
            skip("grouped_counters_move_under_real_work", &reason);
        }
        Err(PmuStatus::Available) => unreachable!("Err carries Unavailable"),
    }
}

#[test]
fn native_backend_interval_counters_carry_pmu_deltas() {
    let mut ctx = ExecContext::native();
    let status = ctx.mem.attach_pmu();
    let before = ctx.mem.counters();
    let mut acc = 0u64;
    let buf = vec![3u64; 1 << 15];
    for &v in &buf {
        acc = acc.wrapping_add(v);
    }
    assert!(acc > 0);
    let delta = ctx.mem.counters_since(&before);
    match status {
        PmuStatus::Available => {
            let sample = delta.pmu.expect("attached backend diffs PMU");
            assert!(sample.instructions > 0, "{sample:?}");
            let rows = gcm::engine::MemoryBackend::counter_level_misses(&ctx.mem, &delta);
            let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["L1d", "LLC", "dTLB"]);
        }
        PmuStatus::Unavailable { reason } => {
            skip("native_backend_interval_counters_carry_pmu_deltas", &reason);
            assert!(delta.pmu.is_none(), "no counters, no rows");
            assert!(
                gcm::engine::MemoryBackend::counter_level_misses(&ctx.mem, &delta).is_empty(),
                "absence means not observable, never zero"
            );
        }
    }
}

#[test]
fn service_explain_analyze_reports_real_misses_or_honest_absence() {
    let mut svc = service();
    let q = LogicalPlan::scan(0).select_lt(1_000).group_count();
    let (report, status) = svc.explain_analyze(&q).expect("explain runs");
    let root = report.root.measured.as_ref().expect("operator root");
    match status {
        PmuStatus::Available => {
            let names: Vec<&str> = root.level_misses.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["L1d", "LLC", "dTLB"]);
            let pred = report.root.predicted.as_ref().expect("priced root");
            let pnames: Vec<&str> = pred.level_misses.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(
                pnames,
                ["L1d", "LLC", "dTLB"],
                "predictions remap onto PMU names so the table pairs rows"
            );
            assert!(
                report.to_text().contains("L1d pred="),
                "{}",
                report.to_text()
            );
        }
        PmuStatus::Unavailable { reason } => {
            skip(
                "service_explain_analyze_reports_real_misses_or_honest_absence",
                &reason,
            );
            assert!(root.level_misses.is_empty());
            assert!(!report.to_text().contains("[misses:"));
        }
    }
}

#[test]
fn flight_recorder_retains_the_last_reports_as_json_lines() {
    let mut svc = service();
    for cut in [100, 400, 900] {
        let q = LogicalPlan::scan(0).select_lt(cut).group_count();
        svc.explain_analyze(&q).expect("explain runs");
    }
    let flight = svc.flight();
    assert_eq!(flight.len(), 3);
    assert_eq!(flight.evicted(), 0);
    let dump = flight.dump_json_lines();
    assert_eq!(dump.lines().count(), 3);
    for line in dump.lines() {
        assert!(line.starts_with("{\"seq\":"), "{line}");
        assert!(line.contains("\"report\":{\"plan\":"), "{line}");
    }
    // Sequence numbers are monotone and 1-based.
    let entries = flight.entries();
    assert_eq!(entries.iter().map(|e| e.seq).collect::<Vec<_>>(), [1, 2, 3]);
}
