//! The unified-model claim (paper §2.3, §7): main memory viewed as a
//! cache for disk pages makes I/O cost fall out of the same formulas.
//!
//! These tests extend the tiny machine with a buffer-pool level and
//! validate the model against the simulator *at that level*, exactly as
//! the other suites do for L1/L2/TLB.

use gcm_bench::exec;
use gcm_core::{CostModel, Pattern, Region};
use gcm_hardware::{presets, HardwareSpec};
use gcm_sim::MemorySystem;
use gcm_workload::Workload;

/// Tiny machine + a 16 KB buffer pool of 2 KB pages (8 pages resident).
fn tiny_with_disk() -> HardwareSpec {
    presets::with_buffer_pool(presets::tiny_full_assoc(), 16 * 1024, 2048)
}

#[test]
fn sequential_scan_faults_each_page_once() {
    let spec = tiny_with_disk();
    let bp = spec.level_index("BP").unwrap();
    let mut mem = MemorySystem::new(spec.clone());
    let bytes = 64 * 1024u64; // 32 pages, 4× the pool
    let base = mem.alloc(bytes, 2048);
    let before = mem.snapshot();
    exec::s_trav(&mut mem, base, bytes / 8, 8, 8);
    let d = mem.delta_since(&before);
    let measured = d.levels[bp].seq_misses + d.levels[bp].rand_misses;
    assert_eq!(measured, 32, "one fault per page");

    let model = CostModel::new(spec.clone());
    let predicted = model.misses(&Pattern::s_trav(Region::new("T", bytes / 8, 8)))[bp].total();
    assert!((predicted - 32.0).abs() < 1.0);
    // And the faults ride the sequential (no-seek) latency.
    assert!(d.levels[bp].seq_misses >= 31);
}

#[test]
fn random_traversal_thrashes_the_pool() {
    let spec = tiny_with_disk();
    let bp = spec.level_index("BP").unwrap();
    let bytes = 64 * 1024u64;
    let n = bytes / 8;
    let perm = Workload::new(1).permutation(n as usize);

    let mut mem = MemorySystem::new(spec.clone());
    let base = mem.alloc(bytes, 2048);
    let before = mem.snapshot();
    exec::r_trav(&mut mem, base, 8, 8, &perm);
    let d = mem.delta_since(&before);
    let measured = (d.levels[bp].seq_misses + d.levels[bp].rand_misses) as f64;

    let model = CostModel::new(spec.clone());
    let predicted = model.misses(&Pattern::r_trav(Region::new("T", n, 8)))[bp].total();
    // Eq 4.4 at the buffer-pool level: far more than one fault per page,
    // approaching one per access; model within 35% (probabilistic term).
    assert!(measured > 3.0 * 32.0, "random I/O must thrash: {measured}");
    let ratio = predicted / measured;
    assert!(
        (0.65..1.5).contains(&ratio),
        "measured {measured} predicted {predicted}"
    );
    // Charged time is seek-dominated. (With only 32 distinct pages, the
    // 8-stream EDO detector occasionally sees accidental page adjacency,
    // so a strict majority is the right assertion at this scale.)
    assert!(d.levels[bp].rand_misses > d.levels[bp].seq_misses);
}

#[test]
fn pool_resident_working_set_is_io_free() {
    let spec = tiny_with_disk();
    let bp = spec.level_index("BP").unwrap();
    let mut mem = MemorySystem::new(spec.clone());
    let bytes = 8 * 1024u64; // half the pool
    let base = mem.alloc(bytes, 2048);
    // Warm pass faults the pages in; steady passes do no I/O.
    exec::s_trav(&mut mem, base, bytes / 8, 8, 8);
    let before = mem.snapshot();
    for _ in 0..3 {
        exec::s_trav(&mut mem, base, bytes / 8, 8, 8);
    }
    let d = mem.delta_since(&before);
    assert_eq!(d.levels[bp].seq_misses + d.levels[bp].rand_misses, 0);
}

#[test]
fn model_ranks_io_algorithms_like_memory_algorithms() {
    // The optimizer story repeats at the I/O level: for data far beyond
    // the pool, the model must prefer sequential-friendly plans.
    let spec = tiny_with_disk();
    let model = CostModel::new(spec);
    let n = 32 * 1024u64; // 256 KB of tuples vs a 16 KB pool
    let u = Region::new("U", n, 8);
    let v = Region::new("V", n, 8);
    let h = Region::new("H", (2 * n).next_power_of_two(), 16);
    let w = Region::new("W", n, 16);

    let merge = model.mem_ns(&gcm_core::library::merge_join(
        u.clone(),
        v.clone(),
        w.clone(),
    ));
    let hash = model.mem_ns(&gcm_core::library::hash_join(u, v, h, w));
    assert!(
        merge < hash / 5.0,
        "at I/O scale the streaming join must dominate: merge {merge} vs hash {hash}"
    );
}
