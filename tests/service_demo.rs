//! The end-to-end service demo, pinned: a 50-query mixed-tenant queue
//! on the modern 4-core SMP (plus its SSD-backed buffer pool — the §7
//! unified shared level, where coexisting queries actually contend at
//! this scale).
//!
//! Pinned claims (the acceptance criteria of the serving layer):
//! * plan-cache hit rate ≥ 80% after warmup (six distinct plan shapes
//!   serve all 50 requests);
//! * the admission controller batches the scan/point mix above 1;
//! * it backs off to serial when two join-heavy queries' composed
//!   footprints would overrun the shared level;
//! * measured batch wall-times stay within 40% of the ⊙ predictions.

use gcm::engine::plan::LogicalPlan;
use gcm::hardware::presets;
use gcm::service::{mix, QueryService, ServiceMetrics, TenantTables};
use gcm::workload::{TenantClass, Workload};

const POOL_PAGES: u64 = 96;
const PAGE: u64 = 8192;

/// The demo machine: 4-core modern SMP, shared L3 and a 96-page SSD
/// pool (sized so one heavy join's working set fits it, two don't —
/// the same role the tiny preset's small caches play for operators).
fn demo_spec() -> gcm::hardware::HardwareSpec {
    presets::with_ssd_buffer_pool(presets::modern_smp(4), POOL_PAGES * PAGE, PAGE)
}

struct Demo {
    svc: QueryService,
    tenants: [TenantTables; 3],
    join_fact: usize,
    join_dim: usize,
}

fn demo() -> Demo {
    let mut svc = QueryService::new(demo_spec());
    let mut wl = Workload::new(2002);
    let point_dim = svc.register_table("point.D", wl.shuffled_keys(65_536), 8);
    let scan_star = wl.star_scenario(131_072, 2_048, 0);
    let scan_fact = svc.register_table("scan.F", scan_star.fact, 8);
    let join_star = wl.star_scenario(240_000, 16_000, 1);
    let join_fact = svc.register_table("join.F", join_star.fact, 8);
    let join_dim = svc.register_table("join.D", join_star.dims[0].clone(), 8);
    Demo {
        svc,
        tenants: [
            TenantTables {
                fact: point_dim,
                dim: point_dim,
                key_bound: 65_536,
            },
            TenantTables {
                fact: scan_fact,
                dim: scan_fact,
                key_bound: 2_048,
            },
            TenantTables {
                fact: join_fact,
                dim: join_dim,
                key_bound: 16_000,
            },
        ],
        join_fact,
        join_dim,
    }
}

const CLASSES: [TenantClass; 3] = [
    TenantClass::PointLookup,
    TenantClass::ScanHeavy,
    TenantClass::JoinHeavy,
];

fn drain(d: &mut Demo) -> ServiceMetrics {
    d.svc.run().expect("queue drains");
    d.svc.metrics().clone()
}

#[test]
fn fifty_query_mixed_tenant_queue_end_to_end() {
    let mut d = demo();
    let requests = Workload::new(2002).query_mix(50, &CLASSES, 1.1);
    assert_eq!(requests.len(), 50);
    // The mix genuinely exercises all three tenants.
    for t in 0..3 {
        assert!(requests.iter().any(|r| r.tenant == t), "tenant {t} absent");
    }
    for req in &requests {
        let plan = mix::plan_for(req, &d.tenants[req.tenant]);
        d.svc.submit(plan).expect("registered tables");
    }
    let m = drain(&mut d);
    assert_eq!(m.queries.len(), 50);

    // Plan-cache hit rate ≥ 80% after warmup: ≤ 2 selectivity buckets
    // per tenant class means at most 6 cold optimizations.
    assert!(m.optimizer_runs <= 6, "optimizer ran {}", m.optimizer_runs);
    assert!(
        m.hit_rate() >= 0.8,
        "hit rate {:.2} below 80%",
        m.hit_rate()
    );

    // The scan/point mix batches above 1 (up to the core budget).
    assert!(m.max_batch_size() > 1, "no batching happened");
    assert!(
        m.max_batch_size() <= 4,
        "batch exceeded the core budget: {}",
        m.max_batch_size()
    );

    // Measured batch wall-times stay within 40% of the ⊙ predictions.
    for b in &m.batches {
        let acc = b.accuracy();
        assert!(
            (0.6..=1.4).contains(&acc),
            "batch {:?} (size {}): measured {:.2} ms vs predicted {:.2} ms",
            b.ids,
            b.size(),
            b.measured_wall_ns / 1e6,
            b.predicted_wall_ns / 1e6
        );
    }

    // Batching pays: the queue's measured elapsed time beats the
    // model's serial account of the same batches.
    assert!(
        m.total_wall_ns() < m.predicted_serial_total_ns(),
        "batched {:.1} ms vs serial {:.1} ms",
        m.total_wall_ns() / 1e6,
        m.predicted_serial_total_ns() / 1e6
    );
}

#[test]
fn two_heavy_joins_back_off_to_serial() {
    // Two join-heavy queries whose grouped joins each fit the shared
    // pool alone but not together: the ⊙-composed batch would thrash
    // (every probe past the shrunken share pays the random page
    // penalty), so the controller schedules them one after the other.
    let mut d = demo();
    let heavy = LogicalPlan::scan(d.join_fact)
        .select_lt(8_000)
        .join(LogicalPlan::scan(d.join_dim))
        .group_count();
    d.svc.submit(heavy.clone()).unwrap();
    d.svc.submit(heavy).unwrap();
    let first = d.svc.next_batch().expect("two pending");
    assert_eq!(first.size(), 1, "heavy pair must not share the machine");
    // The serial decision is the model's: a singleton prices at
    // speedup 1, meaning no admissible composition beat it.
    assert!((first.predicted_speedup() - 1.0).abs() < 1e-9);
    let second = d.svc.next_batch().expect("one left");
    assert_eq!(second.size(), 1);
    assert!(d.svc.next_batch().is_none());

    // The same two queries at a quarter of the selectivity fit the
    // pool together and do batch — the backoff is capacity-driven,
    // not shape-driven.
    let light = LogicalPlan::scan(d.join_fact)
        .select_lt(4_000)
        .join(LogicalPlan::scan(d.join_dim))
        .group_count();
    d.svc.submit(light.clone()).unwrap();
    d.svc.submit(light).unwrap();
    let batch = d.svc.next_batch().expect("two pending");
    assert_eq!(batch.size(), 2, "light pair should share the machine");
    assert!(batch.predicted_speedup() > 1.5);
}

#[test]
fn mixed_batch_admits_around_a_heavy_join() {
    // One heavy join plus streaming queries: the streamers' footprints
    // are a few pages, so they ride along on the other cores while the
    // join keeps (nearly all of) the pool — batch of 4, no backoff.
    let mut d = demo();
    d.svc
        .submit(mix::plan_for(
            &gcm::workload::QueryRequest {
                tenant: 1,
                class: TenantClass::ScanHeavy,
                selectivity: 0.5,
            },
            &d.tenants[1],
        ))
        .unwrap();
    let heavy = LogicalPlan::scan(d.join_fact)
        .select_lt(8_000)
        .join(LogicalPlan::scan(d.join_dim))
        .group_count();
    d.svc.submit(heavy).unwrap();
    for cut in [131, 655] {
        d.svc
            .submit(LogicalPlan::scan(d.tenants[0].dim).select_lt(cut))
            .unwrap();
    }
    let batch = d.svc.next_batch().expect("four pending");
    assert_eq!(batch.size(), 4, "mixed batch should fill the cores");
    assert!(batch.predicted_speedup() > 1.0);
}
