//! Properties of the `⊕`/`⊙` pattern algebra (paper §3.3, §5):
//!
//! * the constructors' flattening is cost-neutral — a hand-nested
//!   `Seq(Seq(..))` / `Conc(Conc(..))` prices exactly like its
//!   flattened form, at every level and from any cache state;
//! * compound footprints follow §5.2: `⊕` takes the max of its parts
//!   (they never coexist), `⊙` the sum (they do);
//! * `⊙` cost is monotone: adding a concurrent part can only add
//!   misses — the newcomer pays its own and shrinks everyone's share.

use gcm::core::eval::{eval_level, CacheState};
use gcm::core::{footprint_lines, CostModel, Geometry, Pattern, Region};
use gcm::hardware::presets;
use proptest::prelude::*;

/// A deterministic basic pattern from a small parameter tuple.
fn basic(kind: u64, name: &str, n: u64, w: u64, k: u64) -> Pattern {
    let r = Region::new(name, n.max(1), w.max(1));
    match kind % 5 {
        0 => Pattern::s_trav(r),
        1 => Pattern::r_trav(r),
        2 => Pattern::rr_trav(r, w.max(1), k.max(1)),
        3 => Pattern::r_acc(r, (n * 2).max(1)),
        _ => Pattern::rs_trav(r, k.max(1), gcm::core::Direction::Bi),
    }
}

fn geo() -> Geometry {
    Geometry {
        c: 2048.0,
        b: 32.0,
        lines: 64.0,
    }
}

fn cost_at(p: &Pattern, g: &Geometry) -> f64 {
    eval_level(p, g, &mut CacheState::cold()).total()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flattening_seq_preserves_cost(
        ka in 0u64..5, kb in 0u64..5, kc in 0u64..5,
        na in 1u64..2000, nb in 1u64..2000, nc in 1u64..2000,
        w in 1u64..3, k in 1u64..4,
    ) {
        let w = 8 * w;
        let (a, b, c) = (
            basic(ka, "A", na, w, k),
            basic(kb, "B", nb, w, k),
            basic(kc, "C", nc, w, k),
        );
        // Hand-nested right-association vs the flattening constructor.
        let nested = Pattern::Seq(vec![
            a.clone(),
            Pattern::Seq(vec![b.clone(), c.clone()]),
        ]);
        let flat = Pattern::seq(vec![a, b, c]);
        prop_assert!(matches!(&flat, Pattern::Seq(ps) if ps.len() == 3));
        let g = geo();
        let model = CostModel::new(presets::tiny());
        prop_assert!((cost_at(&nested, &g) - cost_at(&flat, &g)).abs() < 1e-9);
        prop_assert!((model.mem_ns(&nested) - model.mem_ns(&flat)).abs() < 1e-6);
    }

    #[test]
    fn flattening_conc_preserves_cost(
        ka in 0u64..5, kb in 0u64..5, kc in 0u64..5,
        na in 1u64..2000, nb in 1u64..2000, nc in 1u64..2000,
        w in 1u64..3, k in 1u64..4,
    ) {
        let w = 8 * w;
        let (a, b, c) = (
            basic(ka, "A", na, w, k),
            basic(kb, "B", nb, w, k),
            basic(kc, "C", nc, w, k),
        );
        let nested = Pattern::Conc(vec![
            a.clone(),
            Pattern::Conc(vec![b.clone(), c.clone()]),
        ]);
        let flat = Pattern::conc(vec![a, b, c]);
        prop_assert!(matches!(&flat, Pattern::Conc(ps) if ps.len() == 3));
        let g = geo();
        // Footprints distribute over nesting, so shares — and with them
        // the misses — are identical.
        prop_assert!(
            (footprint_lines(&nested, &g) - footprint_lines(&flat, &g)).abs() < 1e-9
        );
        let model = CostModel::new(presets::tiny());
        prop_assert!((cost_at(&nested, &g) - cost_at(&flat, &g)).abs() < 1e-6);
        prop_assert!(
            (model.mem_ns(&nested) - model.mem_ns(&flat)).abs()
                < 1e-9 * model.mem_ns(&flat).max(1.0)
        );
    }

    #[test]
    fn seq_footprint_is_max_and_conc_footprint_is_sum(
        ka in 0u64..5, kb in 0u64..5,
        na in 1u64..2000, nb in 1u64..2000,
        w in 1u64..3, k in 1u64..4,
    ) {
        let w = 8 * w;
        let (a, b) = (basic(ka, "A", na, w, k), basic(kb, "B", nb, w, k));
        let g = geo();
        let (fa, fb) = (footprint_lines(&a, &g), footprint_lines(&b, &g));
        let seq = Pattern::Seq(vec![a.clone(), b.clone()]);
        let conc = Pattern::Conc(vec![a, b]);
        prop_assert!((footprint_lines(&seq, &g) - fa.max(fb)).abs() < 1e-9);
        prop_assert!((footprint_lines(&conc, &g) - (fa + fb)).abs() < 1e-9);
    }

    #[test]
    fn conc_cost_is_monotone_in_added_parts(
        ka in 0u64..5, kb in 0u64..5, kq in 0u64..5,
        na in 1u64..2000, nb in 1u64..2000, nq in 1u64..2000,
        w in 1u64..3, k in 1u64..4,
    ) {
        let w = 8 * w;
        let (a, b, q) = (
            basic(ka, "A", na, w, k),
            basic(kb, "B", nb, w, k),
            basic(kq, "Q", nq, w, k),
        );
        let g = geo();
        let without = cost_at(&Pattern::conc(vec![a.clone(), b.clone()]), &g);
        let with = cost_at(&Pattern::conc(vec![a, b, q]), &g);
        prop_assert!(
            with >= without - 1e-9,
            "adding a concurrent part must not reduce cost: {with} < {without}"
        );
    }
}
