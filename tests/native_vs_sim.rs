//! Backend equivalence: the same physical plan executed on the
//! simulated hierarchy and on the host's real memory must produce
//! **byte-identical** result relations — the algorithms are shared, only
//! the memory substrate (and therefore the measurement) differs.
//!
//! Seeded property test over the star-schema scenarios in
//! `gcm-workload`, sweeping fact/dimension sizes, selectivity, the join
//! algorithm, and the plan shape.

use gcm_engine::plan::{execute, PhysicalPlan};
use gcm_engine::planner::JoinAlgorithm;
use gcm_engine::{ExecContext, MemoryBackend, Relation};
use gcm_hardware::presets;
use gcm_workload::Workload;
use proptest::prelude::*;

/// Run `plan` over a fresh context on backend `B`, returning the raw
/// bytes of the result relation plus the logical ops performed.
fn run_plan<B: MemoryBackend>(
    mut ctx: ExecContext<B>,
    plan: &PhysicalPlan,
    star: &gcm_workload::StarScenario,
) -> (Vec<u8>, u64, u64) {
    let mut tables: Vec<Relation> = vec![ctx.relation_from_keys("F", &star.fact, 8)];
    for (d, dim) in star.dims.iter().enumerate() {
        tables.push(ctx.relation_from_keys(&format!("D{d}"), dim, 8));
    }
    let (run, stats) = ctx.measure(|c| execute(c, plan, &tables).expect("valid plan"));
    (ctx.relation_bytes(&run.output), run.output.n(), stats.ops)
}

fn algorithms() -> Vec<JoinAlgorithm> {
    vec![
        JoinAlgorithm::Hash,
        JoinAlgorithm::NestedLoop,
        JoinAlgorithm::Merge {
            sort_u: true,
            sort_v: true,
        },
        JoinAlgorithm::PartitionedHash { m: 4 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-join star query under every join algorithm: sim and native
    /// outputs are byte-identical (satellite: the backend-equivalence
    /// property of the tentpole refactor).
    #[test]
    fn star_join_outputs_are_byte_identical(
        seed in 0u64..1_000,
        fact_n in 200usize..1_200,
        dim_n in 50usize..300,
        threshold_pct in 10u64..100,
        algo_idx in 0usize..4,
    ) {
        let star = Workload::new(seed).star_scenario(fact_n, dim_n, 1);
        let threshold = (dim_n as u64 * threshold_pct) / 100;
        let algo = algorithms()[algo_idx].clone();
        let plan = PhysicalPlan::scan(0)
            .select_lt(threshold)
            .join_with(PhysicalPlan::scan(1), algo)
            .group_count();
        let (sim_bytes, sim_n, sim_ops) =
            run_plan(ExecContext::new(presets::tiny()), &plan, &star);
        let (native_bytes, native_n, native_ops) =
            run_plan(ExecContext::native(), &plan, &star);
        prop_assert_eq!(sim_n, native_n);
        prop_assert_eq!(sim_ops, native_ops, "identical logical work");
        prop_assert_eq!(sim_bytes, native_bytes, "byte-identical outputs");
    }

    /// Two-dimension star with sort/dedup/partition stages mixed in, and
    /// on a *different* simulated machine (addresses and alignment may
    /// shift the sim layout — contents must not change).
    #[test]
    fn deep_star_plans_are_byte_identical(
        seed in 0u64..1_000,
        fact_n in 300usize..900,
        dim_n in 40usize..200,
        m in 1u64..9,
        shape in 0usize..3,
    ) {
        let star = Workload::new(seed).star_scenario(fact_n, dim_n, 2);
        let base = PhysicalPlan::scan(0)
            .select_lt(dim_n as u64 / 2)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(PhysicalPlan::scan(2), JoinAlgorithm::PartitionedHash { m });
        let plan = match shape {
            0 => base.group_count(),
            1 => base.sort().dedup(),
            _ => base.partition(m).group_count(),
        };
        let (sim_bytes, sim_n, _) =
            run_plan(ExecContext::new(presets::tiny_full_assoc()), &plan, &star);
        let (native_bytes, native_n, _) = run_plan(ExecContext::native(), &plan, &star);
        prop_assert_eq!(sim_n, native_n);
        prop_assert_eq!(sim_bytes, native_bytes);
    }
}

/// The pinned demo scenario (non-random, so a regression is loud):
/// every join algorithm, sim vs native, across the seeded star schema.
#[test]
fn pinned_star_scenarios_agree_per_algorithm() {
    for (seed, fact_n, dim_n) in [(7, 2_000, 400), (11, 500, 100), (13, 1_500, 64)] {
        let star = Workload::new(seed).star_scenario(fact_n, dim_n, 1);
        for algo in algorithms() {
            let plan = PhysicalPlan::scan(0)
                .select_lt(dim_n as u64 / 2)
                .join_with(PhysicalPlan::scan(1), algo.clone())
                .group_count();
            let (sim_bytes, _, _) = run_plan(ExecContext::new(presets::tiny()), &plan, &star);
            let (native_bytes, _, _) = run_plan(ExecContext::native(), &plan, &star);
            assert_eq!(
                sim_bytes, native_bytes,
                "seed {seed} fact {fact_n} dim {dim_n} algo {algo:?}"
            );
        }
    }
}
