//! Kernel-path identity and overlap-model ranking stability.
//!
//! Two invariants guard the kernel layer:
//!
//! 1. **Byte identity**: the vectorized/prefetched native kernels must
//!    be indistinguishable from the scalar reference path — identical
//!    result bytes, identical logical op counts, and identical charged
//!    access/line counters — across every operator and join algorithm.
//!    The kernels change *when* the work happens, never *what* work is
//!    charged; that is the contract that keeps Eq 3.1's miss accounting
//!    valid under the fast path.
//! 2. **Ranking stability**: the bandwidth-overlap extension of Eq 6.1
//!    degenerates exactly to the paper's additive total at `α = 1` with
//!    no sustained bandwidths (any workload, any machine), and on the
//!    pinned Table-1-style workloads below even full overlap (`α = 0`)
//!    leaves the optimizer's join ranking unchanged — turning the
//!    extension on cannot silently re-rank plans the experiments pinned.

use gcm_core::{CostModel, CpuCost, OverlapParams, Region};
use gcm_engine::plan::{execute, PhysicalPlan};
use gcm_engine::planner::{join_candidates, rank_joins_with, JoinAlgorithm, JoinInputs};
use gcm_engine::{ExecContext, NativeBackend, Relation};
use gcm_hardware::{presets, HardwareSpec};
use gcm_workload::Workload;
use proptest::prelude::*;

/// Run `plan` natively, returning result bytes, output cardinality,
/// logical ops, and the charged access/line counters.
fn run_native(
    mut ctx: ExecContext<NativeBackend>,
    plan: &PhysicalPlan,
    star: &gcm_workload::StarScenario,
) -> (Vec<u8>, u64, u64, u64, u64) {
    let mut tables: Vec<Relation> = vec![ctx.relation_from_keys("F", &star.fact, 8)];
    for (d, dim) in star.dims.iter().enumerate() {
        tables.push(ctx.relation_from_keys(&format!("D{d}"), dim, 8));
    }
    let (run, stats) = ctx.measure(|c| execute(c, plan, &tables).expect("valid plan"));
    (
        ctx.relation_bytes(&run.output),
        run.output.n(),
        stats.ops,
        stats.mem.accesses,
        stats.mem.lines,
    )
}

fn algorithms() -> Vec<JoinAlgorithm> {
    vec![
        JoinAlgorithm::Hash,
        JoinAlgorithm::NestedLoop,
        JoinAlgorithm::Merge {
            sort_u: true,
            sort_v: true,
        },
        JoinAlgorithm::PartitionedHash { m: 4 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every join algorithm, kernel path vs scalar reference: identical
    /// bytes, ops, and charged counters.
    #[test]
    fn kernel_and_scalar_paths_are_byte_identical(
        seed in 0u64..1_000,
        fact_n in 200usize..1_000,
        dim_n in 50usize..250,
        threshold_pct in 10u64..100,
        algo_idx in 0usize..4,
    ) {
        let star = Workload::new(seed).star_scenario(fact_n, dim_n, 1);
        let threshold = (dim_n as u64 * threshold_pct) / 100;
        let plan = PhysicalPlan::scan(0)
            .select_lt(threshold)
            .join_with(PhysicalPlan::scan(1), algorithms()[algo_idx].clone())
            .group_count();
        let kernel = run_native(ExecContext::native(), &plan, &star);
        let scalar = run_native(ExecContext::native_scalar(), &plan, &star);
        prop_assert_eq!(&kernel, &scalar, "kernel vs scalar reference");
    }

    /// Deeper plans (sort, dedup, partition, aggregate) under the wide
    /// tuple layouts that exercise the kernels' strided fallbacks too.
    #[test]
    fn deep_plans_agree_between_kernel_and_scalar_paths(
        seed in 0u64..1_000,
        fact_n in 300usize..800,
        dim_n in 40usize..160,
        m in 1u64..9,
        shape in 0usize..3,
    ) {
        let star = Workload::new(seed).star_scenario(fact_n, dim_n, 2);
        let base = PhysicalPlan::scan(0)
            .select_lt(dim_n as u64 / 2)
            .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
            .join_with(PhysicalPlan::scan(2), JoinAlgorithm::PartitionedHash { m });
        let plan = match shape {
            0 => base.group_count(),
            1 => base.sort().dedup(),
            _ => base.partition(m).group_count(),
        };
        let kernel = run_native(ExecContext::native(), &plan, &star);
        let scalar = run_native(ExecContext::native_scalar(), &plan, &star);
        prop_assert_eq!(&kernel, &scalar);
    }
}

/// Join ranking by the overlap extension with the given parameters.
fn overlap_ranking(
    model: &CostModel,
    inputs: &JoinInputs,
    cpu: CpuCost,
    ov: &OverlapParams,
) -> Vec<JoinAlgorithm> {
    let w = Region::new("W", inputs.out_n, inputs.out_w);
    let mut choices: Vec<(JoinAlgorithm, f64)> = join_candidates(model, inputs, &w)
        .into_iter()
        .map(|c| {
            let total = model.overlap_ns(&c.pattern, cpu, c.ops, ov).total_ns;
            (c.algorithm, total)
        })
        .collect();
    choices.sort_by(|a, b| a.1.total_cmp(&b.1));
    choices.dedup_by(|a, b| a.0 == b.0);
    choices.into_iter().map(|(a, _)| a).collect()
}

fn eq61_ranking(model: &CostModel, inputs: &JoinInputs, cpu: CpuCost) -> Vec<JoinAlgorithm> {
    rank_joins_with(model, inputs, cpu)
        .into_iter()
        .map(|c| c.algorithm)
        .collect()
}

fn table1_machines() -> Vec<HardwareSpec> {
    vec![
        presets::origin2000(),
        presets::tiny(),
        presets::modern_commodity(),
    ]
}

fn pinned_workloads() -> Vec<JoinInputs> {
    vec![
        JoinInputs {
            u: Region::new("U", 100_000, 8),
            v: Region::new("V", 50_000, 8),
            out_w: 16,
            out_n: 100_000,
            u_sorted: false,
            v_sorted: false,
        },
        JoinInputs {
            u: Region::new("U", 20_000, 16),
            v: Region::new("V", 20_000, 16),
            out_w: 16,
            out_n: 20_000,
            u_sorted: false,
            v_sorted: false,
        },
        JoinInputs {
            u: Region::new("U", 500_000, 8),
            v: Region::new("V", 4_000, 8),
            out_w: 16,
            out_n: 500_000,
            u_sorted: true,
            v_sorted: false,
        },
    ]
}

/// `α = 1`, no sustained bandwidths: the overlap total *is* Eq 6.1, so
/// the ranking matches on every machine × workload, exactly.
#[test]
fn overlap_at_alpha_one_reproduces_eq61_ranking_everywhere() {
    let cpu = CpuCost::default_planner();
    for spec in table1_machines() {
        let model = CostModel::new(spec.clone());
        for inputs in pinned_workloads() {
            assert_eq!(
                overlap_ranking(&model, &inputs, cpu, &OverlapParams::eq61()),
                eq61_ranking(&model, &inputs, cpu),
                "machine {} inputs {inputs:?}",
                spec.name
            );
        }
    }
}

/// Pinned: full overlap (`α = 0`) does not re-rank the join candidates
/// on the Table-1 presets for these workloads — the memory term
/// dominates every candidate, so `max(T_mem, T_cpu)` preserves the
/// additive order. A failure here means the overlap extension changed
/// which plan the optimizer picks, which must be a deliberate decision,
/// never a side effect.
#[test]
fn full_overlap_keeps_plan_ranking_on_pinned_table1_workloads() {
    let cpu = CpuCost::default_planner();
    let no_bw = OverlapParams::new(0.0, Vec::new());
    for spec in table1_machines() {
        let model = CostModel::new(spec.clone());
        for inputs in pinned_workloads() {
            assert_eq!(
                overlap_ranking(&model, &inputs, cpu, &no_bw),
                eq61_ranking(&model, &inputs, cpu),
                "machine {} inputs {inputs:?}",
                spec.name
            );
        }
    }
}
