//! Property suite for the `gcm-net` wire codec: the byte stream a
//! shard reads is attacker-controlled, so the decoder must round-trip
//! every legal frame exactly and reject every illegal stream with a
//! typed error — never a panic, never a desync that smuggles bytes
//! into a later connection's frames.

use gcm::net::wire::{
    encode_response, encode_submit, Frame, FrameDecoder, ResponseFrame, SubmitFrame, WireError,
    MAX_FRAME,
};
use gcm::workload::TenantClass;
use proptest::collection::vec;
use proptest::prelude::*;

fn class_of(idx: u8) -> TenantClass {
    TenantClass::from_index(idx % 3).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every submit frame survives encode → decode bit-for-bit,
    /// regardless of how the bytes are chunked on the way in.
    #[test]
    fn submit_round_trips(
        id in 0u64..=u64::MAX,
        tenant in 0u32..=u32::MAX,
        class_idx in 0u8..3,
        sel_bits in 0u64..=u64::MAX,
        chunk in 1usize..40,
    ) {
        let frame = SubmitFrame {
            id,
            tenant,
            class: class_of(class_idx),
            selectivity_bits: sel_bits,
        };
        let mut bytes = Vec::new();
        encode_submit(&frame, &mut bytes);
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            if let Some(f) = dec.next().unwrap() {
                prop_assert!(got.is_none(), "frame decoded twice");
                got = Some(f);
            }
        }
        prop_assert_eq!(got, Some(Frame::Submit(frame)));
        prop_assert_eq!(dec.next().unwrap(), None);
    }

    /// Both response kinds round-trip exactly.
    #[test]
    fn responses_round_trip(
        id in 0u64..=u64::MAX,
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        sojourn in 0u64..=u64::MAX,
        served in 0u8..2,
    ) {
        let frame = if served == 1 {
            ResponseFrame::Served { id, output_n: a, output_hash: b, sojourn_ns: sojourn }
        } else {
            ResponseFrame::Shed { id, sojourn_ns: sojourn }
        };
        let mut bytes = Vec::new();
        encode_response(&frame, &mut bytes);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        prop_assert_eq!(dec.next().unwrap(), Some(Frame::Response(frame)));
        prop_assert_eq!(dec.next().unwrap(), None);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A truncated frame never yields anything — no partial decode, no
    /// error, no panic — until the missing bytes arrive.
    #[test]
    fn truncation_is_silent(
        id in 0u64..=u64::MAX,
        tenant in 0u32..=u32::MAX,
        class_idx in 0u8..3,
        cut in 0usize..26,
    ) {
        let frame = SubmitFrame {
            id,
            tenant,
            class: class_of(class_idx),
            selectivity_bits: 0,
        };
        let mut bytes = Vec::new();
        encode_submit(&frame, &mut bytes);
        let cut = cut.min(bytes.len() - 1);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..cut]);
        prop_assert_eq!(dec.next().unwrap(), None);
        dec.push(&bytes[cut..]);
        prop_assert_eq!(dec.next().unwrap(), Some(Frame::Submit(frame)));
    }

    /// Arbitrary garbage may decode (tags are dense in small ints) or
    /// error, but must never panic, and consuming the stream always
    /// terminates.
    #[test]
    fn garbage_never_panics(bytes in vec(0u8..=255, 0..256)) {
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let mut steps = 0usize;
        loop {
            match dec.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
            steps += 1;
            prop_assert!(steps <= bytes.len(), "decoder failed to make progress");
        }
    }

    /// A declared length beyond MAX_FRAME is rejected from the prefix
    /// alone — the decoder never waits for (or buffers toward) a
    /// hostile payload.
    #[test]
    fn oversized_lengths_rejected_early(extra in 1u32..=u32::MAX - MAX_FRAME as u32) {
        let len = MAX_FRAME as u32 + extra;
        let mut dec = FrameDecoder::new();
        dec.push(&len.to_le_bytes());
        prop_assert_eq!(dec.next(), Err(WireError::Oversized { len }));
    }

    /// A class byte outside the tenant-class range is a typed error.
    #[test]
    fn bad_class_rejected(bad in 3u8..=u8::MAX) {
        let mut bytes = Vec::new();
        encode_submit(
            &SubmitFrame {
                id: 1,
                tenant: 1,
                class: TenantClass::PointLookup,
                selectivity_bits: 0,
            },
            &mut bytes,
        );
        bytes[4 + 13] = bad;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        prop_assert_eq!(dec.next(), Err(WireError::BadClass { value: bad }));
    }

    /// Back-to-back frames with arbitrary chunking decode in order and
    /// leave no residue — the no-desync property that keeps one
    /// client's bytes out of another's frames.
    #[test]
    fn frame_streams_stay_in_sync(
        ids in vec(0u64..=u64::MAX, 1..20),
        chunk in 1usize..64,
    ) {
        let mut bytes = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let frame = SubmitFrame {
                id,
                tenant: i as u32,
                class: class_of(i as u8),
                selectivity_bits: id ^ 0x9e37_79b9_7f4a_7c15,
            };
            encode_submit(&frame, &mut bytes);
        }
        let mut dec = FrameDecoder::new();
        let mut seen = Vec::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            while let Some(f) = dec.next().unwrap() {
                seen.push(f);
            }
        }
        prop_assert_eq!(seen.len(), ids.len());
        for (i, (&id, frame)) in ids.iter().zip(&seen).enumerate() {
            match frame {
                Frame::Submit(s) => {
                    prop_assert_eq!(s.id, id);
                    prop_assert_eq!(s.tenant, i as u32);
                }
                other => prop_assert!(false, "unexpected frame {:?}", other),
            }
        }
        prop_assert_eq!(dec.pending(), 0);
    }
}

/// After a wire error the decoder stays poisoned-safe: further calls
/// keep erroring (or stall) without panicking, matching the shard's
/// drop-the-connection contract.
#[test]
fn decoder_is_safe_after_an_error() {
    let mut dec = FrameDecoder::new();
    dec.push(&(MAX_FRAME as u32 + 7).to_le_bytes());
    assert!(dec.next().is_err());
    assert!(dec.next().is_err(), "error must persist, not reset");
    dec.push(&[0u8; 32]);
    assert!(dec.next().is_err());
}
