//! The tentpole's model-side claim, closed on the actual machine: trie
//! descent *is* a pattern the paper's algebra can price.
//!
//! A batch of `q` snapshot lookups against an 8-ary hash-trie touches
//! `q · avg_depth` unpredictable node addresses plus `q` leaf entries —
//! [`TrieStats::lookup_pattern`] renders that as
//! `r_acc(TrieNodes, q·d) ⊙ r_acc(TrieEntries, q)` and
//! [`TrieStats::lookup_ops`] charges one hash plus one compare per hop
//! (Eq 6.1's `T_cpu`). This test calibrates the host
//! ([`gcm_calibrate::calibrate_host`]), prices that pattern with
//! [`CostModel`] (Eq 3.1 + Eq 6.1), measures the same lookups wall-clock
//! against the real structure, and pins the ratio.
//!
//! ## Bounds (explicit and documented)
//!
//! Same reasoning as `native_vs_model.rs`: wall-clock on a shared CI box
//! carries allocator layout, TLB effects, and scheduling noise the
//! timing-only calibration cannot see, and the trie's nodes live wherever
//! the allocator put them rather than in one contiguous region. The
//! enforced assertion pins the order of magnitude (within
//! [`GENEROUS_BOUND`] = 25×); the `#[ignore]`d strict variant tightens to
//! [`STRICT_BOUND`] = 8× for quiet machines
//! (`cargo test --release -- --ignored trie_strict`).

use gcm_calibrate::calibrate_host;
use gcm_core::{CostModel, CpuCost};
use gcm_engine::native::calibrate_per_op_ns;
use gcm_hardware::HardwareSpec;
use gcm_trie::TrieMap;
use gcm_workload::Workload;
use std::time::Instant;

/// Enforced predicted/measured agreement factor (see module docs).
const GENEROUS_BOUND: f64 = 25.0;

/// Strict agreement factor for quiet machines (`--ignored`).
const STRICT_BOUND: f64 = 8.0;

/// Calibration sweep ceiling: past the LLC of anything we run on in CI.
const CAL_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// Entries in the probed trie (big enough that descent leaves L1).
const ENTRIES: u64 = 100_000;

/// Lookups per measured run.
const LOOKUPS: u64 = 200_000;

fn host_spec() -> HardwareSpec {
    calibrate_host(CAL_MAX_BYTES)
        .to_spec("host (calibrated)", 1_000.0)
        .expect("calibrated parameters form a valid spec")
}

/// Build the trie, price `LOOKUPS` point queries on the calibrated
/// model, measure the same lookups against the real structure, and
/// return `(predicted_ns, measured_ns)`.
fn predict_and_measure() -> (f64, f64) {
    let model = CostModel::new(host_spec());
    let per_op = calibrate_per_op_ns();

    let trie: TrieMap<u64, u64> = TrieMap::new();
    for k in Workload::new(99).shuffled_keys(ENTRIES as usize) {
        trie.insert(k, k.wrapping_mul(3));
    }
    let snap = trie.snapshot();
    let stats = snap.stats();
    assert_eq!(stats.entries, ENTRIES);

    // Model side: the descent pattern with the structure's real shape
    // (measured node count and mean depth), priced cold (Eq 3.1), plus
    // the calibrated per-op CPU charge (Eq 6.1).
    let pattern = stats.lookup_pattern(LOOKUPS);
    let predicted =
        CpuCost::per_op(per_op).eq61_ns(model.mem_ns(&pattern), stats.lookup_ops(LOOKUPS));

    // Measured side: the same lookups, wall clock, against the real
    // trie. Keys are revisited in a shuffled order so the access stream
    // is hash-random like the pattern says.
    let probes = Workload::new(7).shuffled_keys(ENTRIES as usize);
    let mut hit: u64 = 0;
    let start = Instant::now();
    for i in 0..LOOKUPS {
        let k = probes[(i % ENTRIES) as usize];
        if let Some(v) = snap.get(&k) {
            hit = hit.wrapping_add(*v);
        }
    }
    let measured = start.elapsed().as_nanos() as f64;
    assert!(hit > 0, "lookups must observe values");
    assert!(measured > 0.0, "wall clock must advance");
    (predicted, measured)
}

fn check(bound: f64) {
    let (predicted, measured) = predict_and_measure();
    let ratio = predicted / measured;
    assert!(
        (1.0 / bound..bound).contains(&ratio),
        "trie lookups: predicted {predicted:.0} ns vs measured {measured:.0} ns \
         (ratio {ratio:.3}, documented bound {bound}×)"
    );
}

/// The enforced calibrate → model → measure validation for trie
/// descent: predicted lookup cost within [`GENEROUS_BOUND`] of the real
/// structure's wall time.
#[test]
fn calibrated_model_prices_trie_lookups_within_generous_bound() {
    check(GENEROUS_BOUND);
}

/// Strict-timing variant, `#[ignore]`d so a loaded CI box cannot flake
/// the suite; run on a quiet machine with
/// `cargo test --release -- --ignored trie_strict`.
#[test]
#[ignore = "strict timing: run on a quiet machine"]
fn trie_strict_calibrated_model_within_8x() {
    check(STRICT_BOUND);
}

/// The relative claim that survives constant-factor noise: a deeper,
/// bigger trie must cost more — by the model *and* by the wall clock —
/// and the model's per-lookup price must grow with the measured depth.
#[test]
fn model_and_machine_agree_trie_growth_costs() {
    let model = CostModel::new(host_spec());
    let per_op = calibrate_per_op_ns();
    let price = |n: u64| -> (f64, f64) {
        let trie: TrieMap<u64, u64> = TrieMap::new();
        for k in Workload::new(5).shuffled_keys(n as usize) {
            trie.insert(k, k);
        }
        let snap = trie.snapshot();
        let stats = snap.stats();
        let q = 50_000u64;
        let predicted = CpuCost::per_op(per_op)
            .eq61_ns(model.mem_ns(&stats.lookup_pattern(q)), stats.lookup_ops(q));
        let probes = Workload::new(11).shuffled_keys(n as usize);
        let mut sink = 0u64;
        let start = Instant::now();
        for i in 0..q {
            if let Some(v) = snap.get(&probes[(i % n) as usize]) {
                sink = sink.wrapping_add(*v);
            }
        }
        let measured = start.elapsed().as_nanos() as f64;
        assert!(sink > 0);
        (predicted, measured)
    };
    let (p_small, m_small) = price(2_000);
    let (p_big, m_big) = price(200_000);
    assert!(
        p_big > p_small,
        "model must charge the bigger trie more: {p_big:.0} vs {p_small:.0}"
    );
    assert!(
        m_big > m_small,
        "machine must agree: {m_big:.0} vs {m_small:.0}"
    );
}
