//! Observability-layer integration tests (ISSUE 8 satellite c).
//!
//! Three families, all driving the public `gcm::obs` surface from the
//! outside the way a service deployment would:
//!
//! - histogram quantile error: property-tested against the exact order
//!   statistic of the raw samples, which must stay within the
//!   documented [`gcm::obs::hist::QUANTILE_REL_ERROR`] bound;
//! - span recorder under contention: eight writer threads racing a
//!   concurrent drainer must lose nothing and duplicate nothing
//!   (`(lane, seq)` pairs are the identity);
//! - `EXPLAIN ANALYZE` golden: the redacted text of a two-join plan is
//!   pinned byte-for-byte, so the report's tree shape, labels, and row
//!   layout cannot drift silently.
//!
//! Plus the satellite-a check that the bounded miss trace is reachable
//! through the `MemoryBackend` trait rather than only through the
//! simulator's concrete type.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use gcm::core::{CostModel, CpuCost};
use gcm::engine::plan::{explain_analyze, PhysicalPlan};
use gcm::engine::planner::JoinAlgorithm;
use gcm::engine::{ExecContext, MemoryBackend, NativeBackend};
use gcm::hardware::presets;
use gcm::obs::hist::QUANTILE_REL_ERROR;
use gcm::obs::{Histogram, Span, SpanKind, SpanRecorder};
use gcm::workload::Workload;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Histogram quantile error vs the exact order statistic
// ---------------------------------------------------------------------

/// Exact order statistic under the histogram's own rank convention:
/// the sample of rank `⌈q·n⌉` (rank 1 = min) in sorted order.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn histogram_quantiles_stay_within_documented_error(
        mut samples in proptest::collection::vec(0u64..5_000_000_000, 1..400),
        q_mille in 0u64..=1000,
    ) {
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let q = q_mille as f64 / 1000.0;

        for (est, exact) in [
            (h.quantile(q), exact_quantile(&samples, q)),
            (h.p50(), exact_quantile(&samples, 0.50)),
            (h.p99(), exact_quantile(&samples, 0.99)),
            (h.p999(), exact_quantile(&samples, 0.999)),
        ] {
            let err = (est as f64 - exact as f64).abs();
            // Bucket midpoints sit within QUANTILE_REL_ERROR of any
            // value in the bucket; +1 absorbs integer midpoint rounding.
            prop_assert!(
                err <= QUANTILE_REL_ERROR * exact as f64 + 1.0,
                "quantile {q}: estimate {est} vs exact {exact} (err {err})"
            );
        }
        prop_assert_eq!(h.min(), samples[0]);
        prop_assert_eq!(h.max(), *samples.last().unwrap());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    #[test]
    fn histogram_merge_equals_recording_the_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        ha.merge(&hb);

        let mut hu = Histogram::new();
        for &v in a.iter().chain(&b) {
            hu.record(v);
        }
        prop_assert_eq!(ha, hu);
    }
}

// ---------------------------------------------------------------------
// Span recorder: 8 writers racing a concurrent drainer
// ---------------------------------------------------------------------

const WRITERS: usize = 8;
const SPANS_PER_WRITER: u64 = 500;

#[test]
fn eight_writers_with_concurrent_drain_lose_and_duplicate_nothing() {
    // Capacity covers a writer's full output, so even a drainer that
    // never keeps up cannot force drops — any loss is a real bug.
    let rec = SpanRecorder::with_capacity(SPANS_PER_WRITER as usize + 8);
    let done = AtomicBool::new(false);
    let mut harvested: Vec<Span> = Vec::new();

    std::thread::scope(|s| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let mut sink = rec.sink();
            writers.push(s.spawn(move || {
                for i in 0..SPANS_PER_WRITER {
                    sink.record(Span {
                        name: format!("op{w}"),
                        kind: SpanKind::Execute,
                        start_ns: i,
                        end_ns: i + 1,
                        elapsed_ns: 1.0,
                        accesses: 0,
                        level_misses: Vec::new(),
                        ops: i,
                        lane: 0,
                        seq: 0,
                    });
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        // Drain concurrently while the writers are still recording.
        let drainer = s.spawn(|| {
            let mut got = Vec::new();
            while !done.load(Ordering::Acquire) {
                got.extend(rec.drain());
                std::thread::yield_now();
            }
            got
        });
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Release);
        harvested = drainer.join().unwrap();
    });

    // Writers have exited; whatever the racing drainer missed is still
    // buffered.
    harvested.extend(rec.drain());

    let expected = WRITERS as u64 * SPANS_PER_WRITER;
    assert_eq!(rec.dropped(), 0, "capacity was sized to never drop");
    assert_eq!(harvested.len() as u64, expected, "no span may be lost");

    let identities: HashSet<(usize, u64)> = harvested.iter().map(|sp| (sp.lane, sp.seq)).collect();
    assert_eq!(
        identities.len() as u64,
        expected,
        "(lane, seq) pairs must be unique — duplicates mean a slot was read twice"
    );
    // Every lane delivered its full, gap-free sequence.
    for lane in 0..WRITERS {
        for seq in 0..SPANS_PER_WRITER {
            assert!(
                identities.contains(&(lane, seq)),
                "missing span ({lane}, {seq})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE golden: pinned redacted two-join report
// ---------------------------------------------------------------------

/// Redacted (`redacted_text`: digit runs → `#`) report for the pinned
/// two-join plan below. Pins the tree shape, operator labels, column
/// layout, and the presence of per-level miss rows on the simulator —
/// everything except machine-dependent magnitudes.
const GOLDEN: &str = "\
EXPLAIN ANALYZE
group_count  predicted=# ns  measured=# ns  ratio=#  ops=#
  [misses: L# pred=# meas=# | L# pred=# meas=# | TLB pred=# meas=#]
  join[hash]  predicted=# ns  measured=# ns  ratio=#  ops=#
    [misses: L# pred=# meas=# | L# pred=# meas=# | TLB pred=# meas=#]
    join[hash]  predicted=# ns  measured=# ns  ratio=#  ops=#
      [misses: L# pred=# meas=# | L# pred=# meas=# | TLB pred=# meas=#]
      select  predicted=# ns  measured=# ns  ratio=#  ops=#
        [misses: L# pred=# meas=# | L# pred=# meas=# | TLB pred=# meas=#]
        scan(#)
      scan(#)
    scan(#)
";

#[test]
fn explain_analyze_two_join_redacted_text_matches_golden() {
    let mut ctx = ExecContext::new(presets::tiny());
    let star = Workload::new(41).star_scenario(2_000, 400, 2);
    let tables = vec![
        ctx.relation_from_keys("F", &star.fact, 8),
        ctx.relation_from_keys("D1", &star.dims[0], 8),
        ctx.relation_from_keys("D2", &star.dims[1], 8),
    ];
    let plan = PhysicalPlan::scan(0)
        .select_lt(200)
        .join_with(PhysicalPlan::scan(1), JoinAlgorithm::Hash)
        .join_with(PhysicalPlan::scan(2), JoinAlgorithm::Hash)
        .group_count();

    let model = CostModel::new(presets::tiny());
    let cpu = CpuCost::default_planner();
    let (run, report) =
        explain_analyze(&mut ctx, &plan, &tables, &model, &cpu, cpu.per_op_ns).unwrap();
    assert!(run.output.n() > 0);

    let redacted = report.redacted_text();
    assert_eq!(
        redacted, GOLDEN,
        "redacted EXPLAIN ANALYZE drifted from the pinned golden.\n\
         --- actual ---\n{redacted}\n--- end actual ---"
    );
}

// ---------------------------------------------------------------------
// Satellite a: the miss trace travels through the MemoryBackend trait
// ---------------------------------------------------------------------

#[test]
fn miss_trace_is_reachable_through_the_backend_trait() {
    fn attach<B: MemoryBackend>(mem: &mut B, capacity: usize) -> bool {
        mem.attach_miss_trace(capacity)
    }

    let mut ctx = ExecContext::new(presets::tiny());
    assert!(
        attach(&mut ctx.mem, 16),
        "the simulator records miss traces"
    );
    // A cold sequential scan of 4k tuples pushes far more than 16 miss
    // events through the bounded ring: the trace must stay at capacity
    // and count the overflow instead of growing.
    let keys: Vec<u64> = (0..4_000).collect();
    let rel = ctx.relation_from_keys("t", &keys, 8);
    ctx.cold_caches();
    for i in 0..keys.len() as u64 {
        ctx.read_tuple(&rel, i);
    }

    let dropped_live = ctx.mem.miss_trace_dropped().expect("trace is attached");
    let trace = ctx.mem.take_miss_trace().expect("trace detaches");
    assert!(trace.len() <= 16, "ring must stay bounded");
    assert_eq!(trace.events().count(), trace.len());
    assert!(!trace.is_empty(), "a cold 4k-tuple stream must miss");
    assert!(trace.dropped() > 0, "overflow must be counted, not ignored");
    assert_eq!(trace.dropped(), dropped_live);
    // Detached means gone: a second take yields nothing.
    assert!(ctx.mem.take_miss_trace().is_none());
    assert!(ctx.mem.miss_trace_dropped().is_none());

    // Native memory has no observable misses: attach reports that
    // honestly instead of handing back an empty-but-plausible trace.
    let mut native = NativeBackend::new();
    assert!(!native.attach_miss_trace(16));
    assert!(native.take_miss_trace().is_none());
    assert!(native.miss_trace_dropped().is_none());
}
