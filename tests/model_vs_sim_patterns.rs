//! Model-vs-simulator validation of every basic access pattern
//! (the integration-level analogue of the paper's §6).
//!
//! For each basic pattern we drive the cache simulator with exactly the
//! access sequence the pattern describes and compare the measured
//! per-level miss counts with the analytical estimate (Eq 4.2–4.9).
//!
//! The analytical model is deliberately approximate in places —
//! probabilistic reuse estimates, alignment averaging, no conflict
//! misses — so tolerances are explicit per test. Fully-associative
//! variants of the test machine are used where conflict misses would
//! add noise the model does not (and is not meant to) predict.

use gcm_bench::compare::assert_levels_close;
use gcm_bench::exec;
use gcm_core::{CostModel, Direction, GlobalOrder, LatencyClass, LocalPattern, Pattern, Region};
use gcm_hardware::{presets, HardwareSpec};
use gcm_sim::MemorySystem;
use gcm_workload::Workload;

fn model(spec: &HardwareSpec) -> CostModel {
    CostModel::new(spec.clone())
}

/// Measure `f` on a fresh memory system of `spec`, returning the
/// interval snapshot.
fn measure(
    spec: &HardwareSpec,
    bytes: u64,
    f: impl FnOnce(&mut MemorySystem, u64),
) -> gcm_sim::Snapshot {
    let mut mem = MemorySystem::new(spec.clone());
    let align = spec.data_caches().map(|l| l.line).max().unwrap_or(64);
    let base = mem.alloc(bytes.max(1), align);
    let before = mem.snapshot();
    f(&mut mem, base);
    mem.delta_since(&before)
}

// ---------------------------------------------------------------- s_trav

#[test]
fn s_trav_dense_matches_exactly() {
    let spec = presets::tiny();
    for (n, w) in [(4096u64, 8u64), (1024, 16), (512, 32), (333, 24)] {
        let measured = measure(&spec, n * w, |mem, base| {
            exec::s_trav(mem, base, n, w, w);
        });
        let r = Region::new("R", n, w);
        let predicted = model(&spec).misses(&Pattern::s_trav(r));
        assert_levels_close(
            &spec,
            &measured,
            &predicted,
            0.05,
            4.0,
            &format!("s_trav n={n} w={w}"),
        );
    }
}

#[test]
fn s_trav_partial_use_matches() {
    // u < w, gap still below line size: all lines loaded.
    let spec = presets::tiny();
    let (n, w, u) = (2048u64, 16u64, 8u64);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::s_trav(mem, base, n, w, u);
    });
    let predicted = model(&spec).misses(&Pattern::s_trav_u(Region::new("R", n, w), u));
    assert_levels_close(&spec, &measured, &predicted, 0.05, 4.0, "s_trav partial");
}

#[test]
fn s_trav_sparse_matches_per_item_estimate() {
    // w = 256, u = 8: gaps exceed every line; per-item lines formula.
    let spec = presets::tiny();
    let (n, w, u) = (2048u64, 256u64, 8u64);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::s_trav(mem, base, n, w, u);
    });
    let predicted = model(&spec).misses(&Pattern::s_trav_u(Region::new("R", n, w), u));
    // The alignment-averaged formula vs. a line-aligned run: the model
    // expects the average over alignments, the run is the best case —
    // allow the alignment slack.
    assert_levels_close(&spec, &measured, &predicted, 0.30, 8.0, "s_trav sparse");
}

// ---------------------------------------------------------------- r_trav

#[test]
fn r_trav_fitting_matches() {
    let spec = presets::tiny_full_assoc();
    let (n, w) = (256u64, 8u64); // 2 KB: fits L2/TLB, equals L1
    let perm = Workload::new(7).permutation(n as usize);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::r_trav(mem, base, w, w, &perm);
    });
    let predicted = model(&spec).misses(&Pattern::r_trav(Region::new("R", n, w)));
    assert_levels_close(&spec, &measured, &predicted, 0.10, 4.0, "r_trav fitting");
}

#[test]
fn r_trav_oversized_matches_within_model_slack() {
    // 64 KB region vs 2 KB L1 / 16 KB L2: the probabilistic reuse-loss
    // estimate of Eq 4.4 is validated to 25%.
    let spec = presets::tiny_full_assoc();
    let (n, w) = (8192u64, 8u64);
    let perm = Workload::new(8).permutation(n as usize);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::r_trav(mem, base, w, w, &perm);
    });
    let predicted = model(&spec).misses(&Pattern::r_trav(Region::new("R", n, w)));
    assert_levels_close(&spec, &measured, &predicted, 0.25, 16.0, "r_trav oversized");
}

#[test]
fn r_trav_sparse_equals_s_trav_measured_and_predicted() {
    // Gap ≥ line: §4.4's invariant — random order costs the same as
    // sequential order. Verify on both sides.
    let spec = presets::tiny_full_assoc();
    let (n, w, u) = (1024u64, 256u64, 8u64);
    let perm = Workload::new(9).permutation(n as usize);
    let m_rand = measure(&spec, n * w, |mem, base| {
        exec::r_trav(mem, base, w, u, &perm);
    });
    let m_seq = measure(&spec, n * w, |mem, base| {
        exec::s_trav(mem, base, n, w, u);
    });
    let l1 = spec.level_index("L1").unwrap();
    let rand_misses = m_rand.levels[l1].seq_misses + m_rand.levels[l1].rand_misses;
    let seq_misses = m_seq.levels[l1].seq_misses + m_seq.levels[l1].rand_misses;
    assert_eq!(rand_misses, seq_misses, "measured L1 misses must match");
    let p_rand = model(&spec).misses(&Pattern::r_trav_u(Region::new("A", n, w), u));
    let p_seq = model(&spec).misses(&Pattern::s_trav_u(Region::new("B", n, w), u));
    assert!((p_rand[l1].total() - p_seq[l1].total()).abs() < 1e-9);
}

// --------------------------------------------------------------- rs_trav

#[test]
fn rs_trav_fitting_pays_once_both_sides() {
    let spec = presets::tiny();
    let (n, w, k) = (128u64, 8u64, 5u64); // 1 KB < L1
    let measured = measure(&spec, n * w, |mem, base| {
        exec::rs_trav(mem, base, n, w, w, k, false);
    });
    let predicted =
        model(&spec).misses(&Pattern::rs_trav(Region::new("R", n, w), k, Direction::Uni));
    assert_levels_close(&spec, &measured, &predicted, 0.05, 4.0, "rs_trav fitting");
}

#[test]
fn rs_trav_uni_oversized_pays_k_times() {
    let spec = presets::tiny();
    let (n, w, k) = (1024u64, 8u64, 4u64); // 8 KB: 4× L1, fits L2
    let measured = measure(&spec, n * w, |mem, base| {
        exec::rs_trav(mem, base, n, w, w, k, false);
    });
    let predicted =
        model(&spec).misses(&Pattern::rs_trav(Region::new("R", n, w), k, Direction::Uni));
    assert_levels_close(&spec, &measured, &predicted, 0.05, 4.0, "rs_trav uni");
}

#[test]
fn rs_trav_bi_oversized_saves_cache_lines() {
    let spec = presets::tiny_full_assoc();
    let (n, w, k) = (1024u64, 8u64, 4u64);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::rs_trav(mem, base, n, w, w, k, true);
    });
    let predicted =
        model(&spec).misses(&Pattern::rs_trav(Region::new("R", n, w), k, Direction::Bi));
    assert_levels_close(&spec, &measured, &predicted, 0.10, 4.0, "rs_trav bi");
}

// --------------------------------------------------------------- rr_trav

#[test]
fn rr_trav_fitting_pays_once() {
    let spec = presets::tiny_full_assoc();
    let (n, w, k) = (128u64, 8u64, 4u64);
    let perms: Vec<Vec<usize>> = (0..k)
        .map(|s| Workload::new(40 + s).permutation(n as usize))
        .collect();
    let measured = measure(&spec, n * w, |mem, base| {
        exec::rr_trav(mem, base, w, w, &perms);
    });
    let predicted = model(&spec).misses(&Pattern::rr_trav(Region::new("R", n, w), w, k));
    assert_levels_close(&spec, &measured, &predicted, 0.10, 4.0, "rr_trav fitting");
}

#[test]
fn rr_trav_oversized_partial_reuse() {
    // The #²/M1 reuse estimate of Eq 4.7: validated to 30%.
    let spec = presets::tiny_full_assoc();
    let (n, w, k) = (2048u64, 8u64, 3u64); // 16 KB = L2, 8× L1
    let perms: Vec<Vec<usize>> = (0..k)
        .map(|s| Workload::new(50 + s).permutation(n as usize))
        .collect();
    let measured = measure(&spec, n * w, |mem, base| {
        exec::rr_trav(mem, base, w, w, &perms);
    });
    let predicted = model(&spec).misses(&Pattern::rr_trav(Region::new("R", n, w), w, k));
    assert_levels_close(
        &spec,
        &measured,
        &predicted,
        0.30,
        16.0,
        "rr_trav oversized",
    );
}

// ----------------------------------------------------------------- r_acc

#[test]
fn r_acc_fitting_costs_distinct_lines() {
    let spec = presets::tiny_full_assoc();
    let (n, w, q) = (192u64, 8u64, 2048u64); // 1.5 KB < L1
    let idx = Workload::new(60).random_indices(q as usize, n);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::r_acc(mem, base, w, w, &idx);
    });
    let predicted = model(&spec).misses(&Pattern::r_acc(Region::new("R", n, w), q));
    assert_levels_close(&spec, &measured, &predicted, 0.15, 4.0, "r_acc fitting");
}

#[test]
fn r_acc_oversized_misses_per_access() {
    let spec = presets::tiny_full_assoc();
    let (n, w, q) = (16_384u64, 8u64, 8192u64); // 128 KB region
    let idx = Workload::new(61).random_indices(q as usize, n);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::r_acc(mem, base, w, w, &idx);
    });
    let predicted = model(&spec).misses(&Pattern::r_acc(Region::new("R", n, w), q));
    assert_levels_close(&spec, &measured, &predicted, 0.30, 16.0, "r_acc oversized");
}

#[test]
fn r_acc_few_hits_on_huge_region() {
    let spec = presets::tiny_full_assoc();
    let (n, w, q) = (65_536u64, 8u64, 256u64);
    let idx = Workload::new(62).random_indices(q as usize, n);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::r_acc(mem, base, w, w, &idx);
    });
    let predicted = model(&spec).misses(&Pattern::r_acc(Region::new("R", n, w), q));
    assert_levels_close(&spec, &measured, &predicted, 0.30, 8.0, "r_acc sparse hits");
}

// ------------------------------------------------------------------ nest

#[test]
fn nest_below_cliff_matches_sequential_cost() {
    let spec = presets::tiny_full_assoc();
    let (n, w, m) = (16_384u64, 8u64, 4u64); // 4 cursors ≪ 64 L1 lines
    let picks = exec::balanced_picks(n, m, 70);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::nest_seq(mem, base, n, w, w, m, &picks);
    });
    let predicted = model(&spec).misses(&Pattern::nest(
        Region::new("R", n, w),
        m,
        LocalPattern::SeqTraversal {
            u: w,
            latency: LatencyClass::Sequential,
        },
        GlobalOrder::Random,
    ));
    assert_levels_close(&spec, &measured, &predicted, 0.10, 8.0, "nest below cliff");
}

#[test]
fn nest_above_cliff_matches_per_item_cost() {
    let spec = presets::tiny_full_assoc();
    let (n, w, m) = (16_384u64, 8u64, 2048u64); // 2048 cursors ≫ all levels
    let picks = exec::balanced_picks(n, m, 71);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::nest_seq(mem, base, n, w, w, m, &picks);
    });
    let predicted = model(&spec).misses(&Pattern::nest(
        Region::new("R", n, w),
        m,
        LocalPattern::SeqTraversal {
            u: w,
            latency: LatencyClass::Sequential,
        },
        GlobalOrder::Random,
    ));
    assert_levels_close(&spec, &measured, &predicted, 0.25, 16.0, "nest above cliff");
}

#[test]
fn nest_cliff_position_tracks_level_line_counts() {
    // Sweep m across the TLB (8 entries) and L1 (64 lines) cliffs and
    // check measured and predicted misses cliff in the same place.
    let spec = presets::tiny_full_assoc();
    let (n, w) = (32_768u64, 8u64);
    let l1 = spec.level_index("L1").unwrap();
    let tlb = spec.level_index("TLB").unwrap();
    let mut rows = Vec::new();
    for m in [4u64, 16, 128, 1024] {
        let picks = exec::balanced_picks(n, m, 72);
        let measured = measure(&spec, n * w, |mem, base| {
            exec::nest_seq(mem, base, n, w, w, m, &picks);
        });
        let predicted = model(&spec).misses(&Pattern::nest(
            Region::new("R", n, w),
            m,
            LocalPattern::SeqTraversal {
                u: w,
                latency: LatencyClass::Sequential,
            },
            GlobalOrder::Random,
        ));
        rows.push((
            m,
            measured.levels[l1].seq_misses + measured.levels[l1].rand_misses,
            predicted[l1].total(),
            measured.levels[tlb].seq_misses + measured.levels[tlb].rand_misses,
            predicted[tlb].total(),
        ));
    }
    // TLB cliffs between m=4 and m=16 (8 entries); L1 between 16 and 128.
    assert!(rows[1].3 > 3 * rows[0].3, "measured TLB cliff: {rows:?}");
    assert!(rows[1].4 > 3.0 * rows[0].4, "predicted TLB cliff: {rows:?}");
    // (m=128 is only 2× the 64 L1 lines, so roughly half the reuse is
    // lost — a >2× rise, saturating further at m=1024.)
    assert!(rows[2].1 > 2 * rows[1].1, "measured L1 cliff: {rows:?}");
    assert!(rows[2].2 > 2.0 * rows[1].2, "predicted L1 cliff: {rows:?}");
    assert!(rows[3].1 > rows[2].1, "measured L1 saturation: {rows:?}");
}

// ------------------------------------------------------- compound smoke

#[test]
fn seq_composition_reuse_measured_and_predicted() {
    // s_trav(A) ⊕ r_trav(A) with A fitting L2: the random traversal runs
    // against a warm cache on both sides.
    let spec = presets::tiny_full_assoc();
    let (n, w) = (1024u64, 8u64); // 8 KB < 16 KB L2
    let perm = Workload::new(80).permutation(n as usize);
    let measured = measure(&spec, n * w, |mem, base| {
        exec::s_trav(mem, base, n, w, w);
        exec::r_trav(mem, base, w, w, &perm);
    });
    let a = Region::new("A", n, w);
    let p = Pattern::seq(vec![Pattern::s_trav(a.clone()), Pattern::r_trav(a)]);
    let predicted = model(&spec).misses(&p);
    let l2 = spec.level_index("L2").unwrap();
    // L2: the region fits, so the second traversal adds no misses.
    let m_l2 = measured.levels[l2].seq_misses + measured.levels[l2].rand_misses;
    assert_eq!(m_l2, n * w / 64); // one load of every 64-B line
    assert!((predicted[l2].total() - m_l2 as f64).abs() < 4.0);
}

#[test]
fn conc_composition_interference_direction() {
    // Two concurrent random traversals over L1-sized regions interfere:
    // both measured and predicted misses exceed two isolated runs.
    let spec = presets::tiny_full_assoc();
    let (n, w) = (256u64, 8u64); // each region = L1 capacity
    let perm_a = Workload::new(81).permutation(n as usize);
    let perm_b = Workload::new(82).permutation(n as usize);
    let l1 = spec.level_index("L1").unwrap();

    let solo = measure(&spec, n * w, |mem, base| {
        exec::r_trav(mem, base, w, w, &perm_a);
    });
    let solo_misses = solo.levels[l1].seq_misses + solo.levels[l1].rand_misses;

    // Interleaved execution of two traversals.
    let mut mem = MemorySystem::new(spec.clone());
    let base_a = mem.alloc(n * w, 64);
    let base_b = mem.alloc(n * w, 64);
    let before = mem.snapshot();
    for i in 0..n as usize {
        mem.read(base_a + perm_a[i] as u64 * w, w);
        mem.read(base_b + perm_b[i] as u64 * w, w);
    }
    let both = mem.delta_since(&before);
    let both_misses = both.levels[l1].seq_misses + both.levels[l1].rand_misses;
    assert!(
        both_misses >= 2 * solo_misses,
        "interference must not reduce misses: {both_misses} vs 2×{solo_misses}"
    );

    let a = Region::new("A", n, w);
    let b = Region::new("B", n, w);
    let p_solo = model(&spec).misses(&Pattern::r_trav(a.clone()))[l1].total();
    let p_both = model(&spec).misses(&Pattern::conc(vec![Pattern::r_trav(a), Pattern::r_trav(b)]))
        [l1]
        .total();
    assert!(p_both >= 2.0 * p_solo);
}
