//! End-to-end loopback tests of the `gcm-net` ingress tier: a real
//! TCP server in front of a native-executing [`QueryService`], driven
//! by the open-loop load generator at twice its measured capacity.
//!
//! The ISSUE's three serving-tier guarantees, each pinned here:
//!
//! * **fail fast** — a shed reply costs a queue-projection and one
//!   frame, so shed latency sits far below served latency;
//! * **SLO protection** — while the gate sheds, the served
//!   point-lookup tail stays within its sojourn budget;
//! * **zero corruption** — every byte of every served result
//!   (`output_n`, FNV-1a `output_hash`) is identical to a direct
//!   in-process execution of the same request.
//!
//! The in-run bounds are generous so a loaded CI box cannot flake
//! them; the strict variants (budget-exact tails, the 5× fail-fast and
//! 5× protection ratios) run under `--ignored` on quiet machines and
//! in release CI.

#![cfg(target_os = "linux")]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use gcm::hardware::presets;
use gcm::net::loadgen::{self, LoadReport, LoadgenConfig};
use gcm::net::{NetConfig, NetServer, ResponseFrame};
use gcm::service::{plan_for, QueryService, ServiceConfig, SloPolicy, TenantTables};
use gcm::workload::{TenantClass, Workload};

const FACT_N: usize = 8_192;
const DIM_N: usize = 1_024;
const TABLE_SEED: u64 = 777;

/// The serving stack under test: three tenants (one per class) sharing
/// one star pair, native execution over real memory.
fn build_service(slo: Option<SloPolicy>) -> (QueryService, Vec<TenantTables>) {
    let cfg = ServiceConfig {
        slo,
        ..ServiceConfig::default()
    };
    let mut svc = QueryService::with_config(presets::modern_smp(4), cfg);
    let mut wl = Workload::new(TABLE_SEED);
    let star = wl.star_scenario(FACT_N, DIM_N, 1);
    let fact = svc.register_table("net.F", star.fact, 8);
    let dim = svc.register_table("net.D", star.dims[0].clone(), 8);
    let t = TenantTables {
        fact,
        dim,
        key_bound: DIM_N as u64,
    };
    (svc, vec![t, t, t])
}

fn tenant_classes() -> Vec<TenantClass> {
    vec![
        TenantClass::PointLookup,
        TenantClass::ScanHeavy,
        TenantClass::JoinHeavy,
    ]
}

/// Ground truth: execute every distinct request shape directly (no
/// network, no shedding) and record (output_n, output_hash).
fn oracle_hashes(seed: u64, requests: usize) -> HashMap<(u32, u8, u64), (u64, u64)> {
    let (mut svc, tenants) = build_service(None);
    let mut wl = Workload::new(seed);
    let mix = wl.query_mix(requests, &tenant_classes(), 0.99);
    let mut out = HashMap::new();
    for req in &mix {
        let key = (
            req.tenant as u32,
            req.class.index(),
            req.selectivity.to_bits(),
        );
        if out.contains_key(&key) {
            continue;
        }
        let plan = plan_for(req, &tenants[req.tenant]);
        svc.submit(plan).expect("oracle plan must optimize");
        let batch = svc.next_batch().expect("oracle batch");
        let runs = svc.execute_batch_native(batch).expect("oracle execution");
        out.insert(key, (runs[0].output_n, runs[0].output_hash));
    }
    out
}

/// Every served response must match the oracle bit-for-bit.
fn assert_no_corruption(report: &LoadReport, oracle: &HashMap<(u32, u8, u64), (u64, u64)>) {
    let mut checked = 0u64;
    for (submit, response, _latency) in &report.responses {
        if let ResponseFrame::Served {
            output_n,
            output_hash,
            ..
        } = response
        {
            let key = (submit.tenant, submit.class.index(), submit.selectivity_bits);
            let (want_n, want_hash) = oracle[&key];
            assert_eq!(
                (*output_n, *output_hash),
                (want_n, want_hash),
                "served result diverged from direct execution for {key:?}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, report.served, "every served response checked");
}

/// Closed-loop native capacity of the mixed workload, queries/sec, plus
/// the mean solo time in ns — the yardstick both overload tests scale
/// their offered rate and budgets from.
fn measure_capacity(probe: usize) -> (f64, f64) {
    let (mut svc, tenants) = build_service(None);
    let mut wl = Workload::new(TABLE_SEED + 1);
    let mix = wl.query_mix(probe, &tenant_classes(), 0.99);
    // Warm the plan cache so the timed pass measures execution.
    for req in &mix {
        svc.submit(plan_for(req, &tenants[req.tenant])).unwrap();
    }
    while let Some(batch) = svc.next_batch() {
        svc.execute_batch_native(batch).unwrap();
    }
    let t0 = Instant::now();
    for req in &mix {
        svc.submit(plan_for(req, &tenants[req.tenant])).unwrap();
    }
    while let Some(batch) = svc.next_batch() {
        svc.execute_batch_native(batch).unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-6);
    let qps = probe as f64 / elapsed;
    (qps, elapsed * 1e9 / probe as f64)
}

struct OverloadRun {
    report: LoadReport,
    budget_ns: f64,
}

/// Drive a server at 2× measured capacity for `requests` queries.
fn overload_run(requests: usize, seed: u64, with_slo: bool) -> OverloadRun {
    let (capacity_qps, solo_ns) = measure_capacity(60);
    // Budget ≈ 60 solo times: far above a drain cycle (so shed replies
    // are visibly faster than budget-bound served ones), far below the
    // run's unshedded backlog (so overload genuinely sheds).
    let budget_ns = 60.0 * solo_ns;
    let slo = with_slo.then(|| SloPolicy::uniform(budget_ns));
    let (svc, tenants) = build_service(slo);
    let server = NetServer::start(
        svc,
        tenants,
        NetConfig {
            shards: 2,
            ..NetConfig::default()
        },
    )
    .expect("server start");
    let report = loadgen::run(
        server.addr(),
        &LoadgenConfig {
            requests,
            offered_qps: 2.0 * capacity_qps,
            connections: 4,
            tenants: tenant_classes(),
            zipf_theta: 0.99,
            seed,
            drain_timeout: Duration::from_secs(30),
        },
    )
    .expect("load run");
    server.shutdown();
    OverloadRun { report, budget_ns }
}

/// Under capacity with no SLO gate: every request is served over the
/// socket and every result matches direct execution byte-for-byte.
#[test]
fn loopback_round_trip_preserves_results() {
    let (svc, tenants) = build_service(None);
    let server = NetServer::start(svc, tenants, NetConfig::default()).expect("server start");
    let cfg = LoadgenConfig {
        requests: 90,
        offered_qps: 2_000.0,
        connections: 3,
        tenants: tenant_classes(),
        zipf_theta: 0.99,
        seed: 4242,
        drain_timeout: Duration::from_secs(30),
    };
    let report = loadgen::run(server.addr(), &cfg).expect("load run");
    let svc = server.shutdown();
    assert_eq!(report.sent, 90);
    assert_eq!(report.served, 90, "no SLO gate: everything is served");
    assert_eq!(report.shed, 0);
    assert_eq!(report.lost, 0);
    assert_no_corruption(&report, &oracle_hashes(4242, 90));
    // The service saw real traffic: the wall-scale EWMA was seeded by
    // measured native batches.
    let mut svc = svc;
    assert!(!svc.metrics().batches.is_empty() || svc.wall_scale() != 1.0);
}

/// 2× overload with the ⊙-priced gate on: work is shed (fail-fast,
/// cheaper than being served), the served point-lookup tail respects
/// its budget, and nothing is corrupted. Generous bounds — the strict
/// ratios live in the `--ignored` variant.
#[test]
fn overload_sheds_fast_and_protects_point_lookups() {
    let run = overload_run(240, 9001, true);
    let report = &run.report;
    assert_eq!(report.lost, 0, "every request gets exactly one answer");
    assert!(report.shed > 0, "2x overload must shed");
    assert!(report.served > 0, "shedding must not starve the service");
    assert_no_corruption(report, &oracle_hashes(9001, 240));

    let point = report.class(TenantClass::PointLookup);
    assert!(point.served > 0, "point lookups must keep being served");
    assert!(
        (point.served_latency.p99() as f64) < 4.0 * run.budget_ns,
        "served point-lookup p99 {} ns vs budget {} ns",
        point.served_latency.p99(),
        run.budget_ns
    );

    // Fail-fast, generously: shed replies are no slower than served
    // ones at the tail.
    let mut served_all = gcm::obs::Histogram::new();
    let mut shed_all = gcm::obs::Histogram::new();
    for c in &report.classes {
        served_all.merge(&c.served_latency);
        shed_all.merge(&c.shed_latency);
    }
    assert!(
        shed_all.p99() <= served_all.p99(),
        "shed p99 {} ns must not exceed served p99 {} ns",
        shed_all.p99(),
        served_all.p99()
    );
}

/// The strict acceptance ratios, on a quiet machine: shed p99 at least
/// 5× below served p99, point-lookup p99 within its budget, and the
/// gate buying ≥5× on the point tail versus running open.
#[test]
#[ignore = "strict timing bounds; run on a quiet machine or in release CI"]
fn overload_strict_fail_fast_and_protection_ratios() {
    let gated = overload_run(240, 31337, true);
    let report = &gated.report;
    assert_eq!(report.lost, 0);
    assert!(report.shed > 0);
    assert_no_corruption(report, &oracle_hashes(31337, 240));

    let mut served_all = gcm::obs::Histogram::new();
    let mut shed_all = gcm::obs::Histogram::new();
    for c in &report.classes {
        served_all.merge(&c.served_latency);
        shed_all.merge(&c.shed_latency);
    }
    assert!(
        5 * shed_all.p99() <= served_all.p99(),
        "fail-fast ratio: shed p99 {} vs served p99 {}",
        shed_all.p99(),
        served_all.p99()
    );
    let point = report.class(TenantClass::PointLookup);
    assert!(
        (point.served_latency.p99() as f64) <= gated.budget_ns,
        "point p99 {} ns vs budget {} ns",
        point.served_latency.p99(),
        gated.budget_ns
    );

    // The same schedule with the gate off: point lookups drown in the
    // backlog; the gate must be worth ≥5× on their p99.
    let open = overload_run(240, 31337, false);
    assert_eq!(open.report.shed, 0);
    let open_point = open.report.class(TenantClass::PointLookup);
    assert!(
        5 * point.served_latency.p99() <= open_point.served_latency.p99(),
        "protection ratio: gated p99 {} vs open p99 {}",
        point.served_latency.p99(),
        open_point.served_latency.p99()
    );
}

/// Hostile bytes on a live server: a connection spraying garbage is
/// dropped without taking the server down, and well-formed traffic on
/// other connections keeps flowing.
#[test]
fn garbage_connection_does_not_poison_the_server() {
    use std::io::{Read, Write};

    let (svc, tenants) = build_service(None);
    let server = NetServer::start(svc, tenants, NetConfig::default()).expect("server start");

    // A vandal connection: oversized length prefix then junk.
    let mut vandal = std::net::TcpStream::connect(server.addr()).unwrap();
    vandal.set_nodelay(true).unwrap();
    vandal.write_all(&(1_000_000u32).to_le_bytes()).unwrap();
    vandal.write_all(&[0xAB; 256]).unwrap();
    vandal
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    // The server must hang up on the vandal (read returns 0) rather
    // than answering or crashing.
    let n = vandal.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "corrupt connection must be dropped, not answered");

    // An honest request on a fresh connection still gets served.
    let report = loadgen::run(
        server.addr(),
        &LoadgenConfig {
            requests: 6,
            offered_qps: 500.0,
            connections: 1,
            tenants: tenant_classes(),
            zipf_theta: 0.0,
            seed: 7,
            drain_timeout: Duration::from_secs(20),
        },
    )
    .expect("load run after vandal");
    assert_eq!(report.served, 6);
    assert_eq!(report.lost, 0);
    server.shutdown();
}
