//! Property-based tests (proptest) on the model's invariants and the
//! simulator's cache semantics.
//!
//! The §4.4 invariants of the paper are checked over randomly drawn
//! region geometries rather than hand-picked examples; the simulator is
//! checked for conservation laws (hits + misses = accesses, determinism,
//! LRU recency) over random access strings.

use gcm_core::{misses, CacheState, CostModel, Direction, Geometry, LatencyClass, Pattern, Region};
use gcm_hardware::presets;
use gcm_sim::MemorySystem;
use proptest::prelude::*;

fn geo(c: u64, b: u64) -> Geometry {
    Geometry {
        c: c as f64,
        b: b as f64,
        lines: c as f64 / b as f64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ------------------------------------------------ model invariants

    #[test]
    fn misses_are_finite_and_non_negative(
        n in 0u64..1_000_000,
        w in 1u64..512,
        c_pow in 8u32..22,
        b_pow in 4u32..8,
    ) {
        let g = geo(1 << c_pow, 1 << b_pow);
        let r = Region::new("R", n, w);
        let u = w;
        for m in [
            misses::s_trav(&r, u, LatencyClass::Sequential, &g),
            misses::r_trav(&r, u, &g),
            misses::rs_trav(&r, u, 3, Direction::Bi, LatencyClass::Sequential, &g),
            misses::rr_trav(&r, u, 3, &g),
            misses::r_acc(&r, u, n / 2 + 1, &g),
        ] {
            prop_assert!(m.seq.is_finite() && m.rand.is_finite());
            prop_assert!(m.seq >= 0.0 && m.rand >= 0.0);
        }
    }

    #[test]
    fn s_trav_monotone_in_items(
        n in 1u64..500_000,
        w in 1u64..256,
        u_frac in 1u64..=100,
    ) {
        let g = geo(32 * 1024, 32);
        let u = ((w * u_frac) / 100).max(1);
        let small = Region::new("A", n, w);
        let large = Region::new("B", n * 2, w);
        let ms = misses::s_trav_count(&small, u, &g);
        let ml = misses::s_trav_count(&large, u, &g);
        prop_assert!(ml >= ms, "doubling items cannot reduce misses: {ms} -> {ml}");
    }

    #[test]
    fn random_never_cheaper_than_sequential(
        n in 1u64..200_000,
        w in 1u64..256,
    ) {
        // §4.4: Mr(r_trav) ≥ Ms(s_trav) always (equal when fitting or
        // when gaps exceed the line).
        let g = geo(64 * 1024, 64);
        let r = Region::new("R", n, w);
        let seq = misses::s_trav_count(&r, w, &g);
        let rand = misses::r_trav(&r, w, &g).total();
        prop_assert!(rand >= seq - 1e-9, "random {rand} < sequential {seq}");
    }

    #[test]
    fn gap_at_least_line_makes_order_irrelevant(
        n in 1u64..100_000,
        w in 96u64..512,
        u in 1u64..=32,
    ) {
        // §4.4: with untouched gaps ≥ B, random == sequential count.
        let g = geo(32 * 1024, 32);
        prop_assume!(w - u >= 32);
        let r = Region::new("R", n, w);
        let seq = misses::s_trav_count(&r, u, &g);
        let rand = misses::r_trav(&r, u, &g).total();
        prop_assert!((seq - rand).abs() < 1e-6, "{seq} vs {rand}");
    }

    #[test]
    fn repetition_directions_are_ordered(
        n in 1u64..100_000,
        w in 1u64..64,
        k in 2u64..8,
    ) {
        // Eq 4.6: single ≤ bi ≤ uni ≤ k·single.
        let g = geo(16 * 1024, 32);
        let r = Region::new("R", n, w);
        let single = misses::s_trav_count(&r, w, &g);
        let bi = misses::rs_trav(&r, w, k, Direction::Bi, LatencyClass::Sequential, &g).total();
        let uni = misses::rs_trav(&r, w, k, Direction::Uni, LatencyClass::Sequential, &g).total();
        prop_assert!(single <= bi + 1e-9);
        prop_assert!(bi <= uni + 1e-9);
        prop_assert!(uni <= k as f64 * single + 1e-9);
    }

    #[test]
    fn r_acc_monotone_in_accesses(
        n in 16u64..1_000_000,
        q1 in 1u64..100_000,
    ) {
        let g = geo(32 * 1024, 32);
        let r = Region::new("R", n, 8);
        let m1 = misses::r_acc(&r, 8, q1, &g).total();
        let m2 = misses::r_acc(&r, 8, q1 * 2, &g).total();
        prop_assert!(m2 >= m1 - 1e-9, "more accesses cannot miss less: {m1} -> {m2}");
    }

    #[test]
    fn cache_state_only_helps(
        n in 1u64..100_000,
        w in 1u64..64,
        rho in 0.0f64..=1.0,
    ) {
        // Starting from any warm state can never cost more than cold.
        let g = geo(16 * 1024, 32);
        let r = Region::new("R", n, w);
        for p in [Pattern::s_trav(r.clone()), Pattern::r_trav(r.clone())] {
            let cold = gcm_core::eval::eval_level(&p, &g, &mut CacheState::cold());
            let mut warm_state = CacheState::cold();
            warm_state.set(&r, rho);
            let warm = gcm_core::eval::eval_level(&p, &g, &mut warm_state);
            prop_assert!(warm.total() <= cold.total() + 1e-9);
        }
    }

    #[test]
    fn concurrency_only_hurts(
        n1 in 64u64..50_000,
        n2 in 64u64..50_000,
    ) {
        // ⊙ interference can never reduce the total below the two
        // full-cache runs.
        let hw = presets::tiny();
        let model = CostModel::new(hw);
        let a = Region::new("A", n1, 8);
        let b = Region::new("B", n2, 8);
        let solo_a: f64 = model.misses(&Pattern::r_trav(a.clone())).iter().map(|m| m.total()).sum();
        let solo_b: f64 = model.misses(&Pattern::r_trav(b.clone())).iter().map(|m| m.total()).sum();
        let both: f64 = model
            .misses(&Pattern::conc(vec![Pattern::r_trav(a), Pattern::r_trav(b)]))
            .iter()
            .map(|m| m.total())
            .sum();
        prop_assert!(both >= solo_a + solo_b - 1e-6);
    }

    #[test]
    fn bigger_caches_never_hurt(
        n in 1u64..200_000,
        w in 1u64..64,
        q in 1u64..50_000,
    ) {
        let small = geo(8 * 1024, 32);
        let big = geo(64 * 1024, 32);
        let r = Region::new("R", n, w);
        for (ms, mb) in [
            (misses::r_trav(&r, w, &small).total(), misses::r_trav(&r, w, &big).total()),
            (misses::r_acc(&r, w, q, &small).total(), misses::r_acc(&r, w, q, &big).total()),
            (
                misses::rr_trav(&r, w, 3, &small).total(),
                misses::rr_trav(&r, w, 3, &big).total(),
            ),
        ] {
            prop_assert!(mb <= ms + 1e-9, "bigger cache increased misses: {ms} -> {mb}");
        }
    }

    // -------------------------------------------- simulator invariants

    #[test]
    fn sim_conservation_laws(
        ops in proptest::collection::vec((0u64..4096, 1u64..64), 1..200),
    ) {
        let mut mem = MemorySystem::new(presets::tiny());
        let base = mem.alloc(8192, 64);
        for (off, len) in ops {
            mem.read(base + off, len.min(4096 - off.min(4095)).max(1));
        }
        for l in mem.stats() {
            prop_assert_eq!(l.hits + l.seq_misses + l.rand_misses, l.accesses);
        }
    }

    #[test]
    fn sim_is_deterministic(
        ops in proptest::collection::vec(0u64..8192, 1..300),
    ) {
        let run = || {
            let mut mem = MemorySystem::new(presets::tiny());
            let base = mem.alloc(8192, 64);
            for &off in &ops {
                mem.read(base + off, 8.min(8192 - off).max(1));
            }
            (mem.snapshot(), mem.clock_ns())
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn sim_immediate_rereference_hits(
        offsets in proptest::collection::vec(0u64..65_536, 1..100),
    ) {
        let mut mem = MemorySystem::new(presets::tiny());
        let base = mem.alloc(65_536 + 8, 64);
        for &off in &offsets {
            mem.read(base + off, 1);
            let before = mem.snapshot();
            mem.read(base + off, 1); // LRU: just-touched line must hit
            let d = mem.delta_since(&before);
            prop_assert_eq!(d.total_misses(), 0, "re-reference missed at {}", off);
        }
    }

    #[test]
    fn sim_fitting_working_set_stops_missing(
        lines in proptest::collection::vec(0u64..32, 10..100),
    ) {
        // Any working set within the L1 line count eventually stops
        // missing in L1: replay the string twice; the second pass over
        // ≤ 32 distinct lines (of 64 available) must be all hits.
        let mut mem = MemorySystem::new(presets::tiny());
        let base = mem.alloc(32 * 32, 64);
        for &l in &lines {
            mem.read(base + l * 32, 8);
        }
        let before = mem.snapshot();
        for &l in &lines {
            mem.read(base + l * 32, 8);
        }
        let l1 = mem.spec().level_index("L1").unwrap();
        let d = mem.delta_since(&before);
        prop_assert_eq!(
            d.levels[l1].seq_misses + d.levels[l1].rand_misses,
            0,
            "fitting working set must be resident"
        );
    }

    // --------------------------------------- model-vs-simulator (dense)

    #[test]
    fn dense_s_trav_model_matches_sim_exactly(
        n in 64u64..8192,
        w_pow in 0u32..6,
    ) {
        // Dense sequential traversals (gap < B) are exact: model = ⌈||R||/B⌉.
        let w = 1u64 << w_pow; // 1..32
        let spec = presets::tiny();
        let mut mem = MemorySystem::new(spec.clone());
        let base = mem.alloc(n * w, 1024);
        let before = mem.snapshot();
        for i in 0..n {
            mem.read(base + i * w, w);
        }
        let d = mem.delta_since(&before);
        let model = CostModel::new(spec.clone());
        let predicted = model.misses(&Pattern::s_trav(Region::new("R", n, w)));
        for (i, _lvl) in spec.levels().iter().enumerate() {
            let m = (d.levels[i].seq_misses + d.levels[i].rand_misses) as f64;
            prop_assert!(
                (m - predicted[i].total()).abs() <= 1.0,
                "level {i}: measured {m} predicted {}",
                predicted[i].total()
            );
        }
    }
}
