//! Case configuration, the deterministic RNG, and case-level errors.

/// Per-test configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; the case is skipped.
    Reject(&'static str),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

/// Deterministic SplitMix64 stream. Every case `i` of every run draws
/// from the same stream, so failures reproduce without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// The RNG for case number `case`.
    pub fn for_case(case: u32) -> TestRng {
        // Scatter the starting states by running the mix function on the
        // case index. Spacing them by GOLDEN_GAMMA instead would put
        // every stream on the same lattice — case c+1's draws would be
        // case c's shifted by one, collapsing the distinct-draw count
        // across cases.
        TestRng {
            state: Self::mix(0xD1B5_4A32_D192_ED03 ^ (case as u64)),
        }
    }

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GOLDEN_GAMMA);
        Self::mix(self.state)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded draw (Lemire); bias is negligible for
        // test-generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case(4);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn case_streams_do_not_overlap() {
        // Adjacent cases must not be shifted copies of one stream.
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(0);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(1);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert!(
            !a[1..].iter().eq(b[..31].iter()),
            "case 1 is case 0 shifted"
        );
        assert!(
            !b[1..].iter().eq(a[..31].iter()),
            "case 0 is case 1 shifted"
        );
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut r = TestRng::for_case(0);
        for _ in 0..10_000 {
            assert!(r.next_below(37) < 37);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
