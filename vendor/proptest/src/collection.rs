//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `vec(element, len_range)` — a vector of `element` samples with a
/// uniformly drawn length in `len_range`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = TestRng::for_case(5);
        let s = vec(0u64..100, 3..8);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((3..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn vec_of_tuples() {
        let mut rng = TestRng::for_case(6);
        let s = vec((0u64..4096, 1u64..64), 1..200);
        let v = s.sample(&mut rng);
        assert!(v.iter().all(|&(a, b)| a < 4096 && (1..64).contains(&b)));
    }
}
