//! Offline shim for the `proptest` property-testing framework.
//!
//! The build environment has no network access to crates.io, so this
//! crate provides the subset of proptest's API that the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * integer-range, [`Just`](strategy::Just), tuple,
//!   [`collection::vec`] and [`prop_oneof!`] strategies.
//!
//! Cases are generated from a deterministic SplitMix64 stream (seeded by
//! the case index), so failures reproduce exactly across runs. Unlike
//! the real proptest there is **no shrinking**: a failing case reports
//! its case index and assertion message as-is. Swap this shim for the
//! real crates.io `proptest` (keeping the same manifests) when network
//! is available; no test source needs to change.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The body of a `proptest!` test block: runs `config.cases` cases,
/// sampling each declared strategy from a per-case deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            continue;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} of {} failed: {}", case, config.cases, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{} == {}` ({:?} vs {:?})",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discard the current case (does not count as a failure) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}
