//! The [`Strategy`] trait and the built-in strategies the workspace's
//! tests draw from: integer ranges, `Just`, tuples, and unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate a value of `Self::Value` from the
/// deterministic test RNG. (The real proptest separates strategies from
/// value trees to support shrinking; the shim samples directly.)
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range (e.g. 0..=u64::MAX): the +1 wrapped.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Box a strategy as a trait object. Going through a function (rather
/// than an `as` cast) lets the unified `Value` type flow back into
/// integer-literal inference: `prop_oneof![Just(16u64), Just(32)]`
/// resolves the bare `32` to `u64`.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between boxed strategies of one value type; the
/// expansion target of [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (3u8..=5).sample(&mut rng);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_wrap() {
        let mut rng = TestRng::for_case(9);
        let mut seen_high = false;
        for _ in 0..200 {
            let v = (0u64..=u64::MAX).sample(&mut rng);
            seen_high |= v > u64::MAX / 2;
            let w = (i64::MIN..=i64::MAX).sample(&mut rng);
            let _ = w; // any value is in range; just must not panic
        }
        assert!(seen_high, "full-width range degenerated to low values");
    }

    #[test]
    fn tuples_and_unions_sample() {
        let mut rng = TestRng::for_case(2);
        let (a, b) = (0u64..4, 10u64..14).sample(&mut rng);
        assert!(a < 4 && (10..14).contains(&b));
        let u = crate::prop_oneof![Just(1u64), Just(2), Just(3)];
        for _ in 0..50 {
            assert!((1..=3).contains(&u.sample(&mut rng)));
        }
    }
}
