//! Offline shim for the `criterion` benchmarking harness.
//!
//! The build environment has no network access to crates.io, so this
//! crate provides the subset of criterion's API that the workspace's
//! bench targets use: [`Criterion`], [`Bencher`], benchmark groups with
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is a plain `std::time::Instant` loop — median of
//! `sample_size` samples after a short warm-up — printed in criterion's
//! one-line style. Swap this shim for the real crates.io `criterion`
//! (keeping the same manifests) when network is available; no bench
//! source needs to change.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmark's measured time relates to work done, for deriving
/// a throughput figure next to the time-per-iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point; collects samples and prints them.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_iters: 3,
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, None, self.sample_size, self.warm_up_iters, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used to report rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group only (the parent
    /// [`Criterion`]'s setting is untouched, as in the real criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_iters,
            f,
        );
        self
    }

    /// Finish the group (printing is done per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    timing: bool,
}

impl Bencher {
    /// Time one sample of `f`, recording its wall-clock duration.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        black_box(f());
        if self.timing {
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, throughput: Option<Throughput>, samples: usize, warm_up: u64, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    for _ in 0..warm_up {
        f(&mut b);
    }
    b.timing = true;
    while b.samples.len() < samples {
        let before = b.samples.len();
        f(&mut b);
        assert!(
            b.samples.len() > before,
            "benchmark {id} returned without calling Bencher::iter"
        );
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({:.3} Melem/s)", per_sec(n) / 1e6),
            Throughput::Bytes(n) => format!(" ({:.3} MiB/s)", per_sec(n) / (1024.0 * 1024.0)),
        }
    });
    println!(
        "{id:<48} time: [{median:?} median of {n} samples]{rate}",
        n = b.samples.len(),
        rate = rate.as_deref().unwrap_or("")
    );
}

/// Declare a group of benchmark functions, with or without a custom
/// [`Criterion`] configuration (both spellings of the real macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` that runs each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` invokes the target with `--bench`; the shim
            // has no CLI, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(4);
        let mut runs = 0u32;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert!(runs >= 4);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn group_sample_size_does_not_leak() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(50);
        g.bench_function("inner", |b| b.iter(|| black_box(0)));
        g.finish();
        let mut runs = 0u32;
        c.bench_function("after", |b| b.iter(|| runs += 1));
        // default sample_size (10) + warm-up (3), not the group's 50
        assert_eq!(runs, 13);
    }

    #[test]
    #[should_panic(expected = "without calling Bencher::iter")]
    fn closure_skipping_iter_panics_instead_of_hanging() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("bad", |_b| {});
    }
}
